"""The per-process topology cache.

One :class:`TopologyCache` lives per process (:func:`topology_cache`).
It memoizes the three expensive, purely-topological computations every
job used to redo from scratch:

* **hierarchy construction** — ``hierarchy(key)`` builds the grid/strip
  hierarchy for a :class:`~repro.topo.keys.TopologyKey` once; later
  builds of the same key return the same object.  Hierarchies are
  immutable after construction (their internal ``_nbrs_cache`` etc. are
  pure memoization), so sharing is trace-safe.
* **route tables** — ``routes(tiling)`` hands out one shared
  :class:`~repro.topo.routes.RouteTable` per tiling object, so every
  geocast router over the same world amortizes the same BFS trees.
* **distance partitions** — ``regions_at_distance(tiling, center, d)``
  groups regions by distance from a center once per (tiling, center),
  replacing the full-scan filter the find experiments ran per query.

``warm(keys)`` pre-builds hierarchies (and their cluster adjacency) for
a sweep's distinct topology keys — the pool-worker initializer calls it
so forked/spawned workers start hot.

Switches: the cache is enabled unless ``REPRO_TOPO_CACHE=0`` is set in
the environment when the process starts; :func:`set_cache_enabled` and
the :func:`bypass` context manager flip it at runtime (the golden A/B
tests compare a bypassed run against a cached one).

This module also hosts the setup-wall accumulator
(:func:`add_setup_seconds` / :func:`setup_seconds_total`):
``repro.scenario.build`` charges world-construction time to it, and the
sweep runner reads the delta around each job to split per-job wall into
setup vs run.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List

from .keys import TopologyKey
from .routes import RouteTable

# ----------------------------------------------------------------------
# Enabled flag
# ----------------------------------------------------------------------
_ENABLED = os.environ.get("REPRO_TOPO_CACHE", "").strip() != "0"


def cache_enabled() -> bool:
    """Whether topology caching is currently on in this process."""
    return _ENABLED


def set_cache_enabled(enabled: bool) -> None:
    """Turn the cache on/off (affects subsequent builds, not past ones)."""
    global _ENABLED
    _ENABLED = bool(enabled)


@contextmanager
def bypass():
    """Context manager: run with the cache disabled (legacy behavior)."""
    previous = _ENABLED
    set_cache_enabled(False)
    try:
        yield
    finally:
        set_cache_enabled(previous)


# ----------------------------------------------------------------------
# Setup-wall accounting
# ----------------------------------------------------------------------
_SETUP_SECONDS = 0.0


def add_setup_seconds(seconds: float) -> None:
    """Charge ``seconds`` of world-construction time to this process."""
    global _SETUP_SECONDS
    _SETUP_SECONDS += seconds


def setup_seconds_total() -> float:
    """Cumulative world-construction seconds charged in this process."""
    return _SETUP_SECONDS


@contextmanager
def charge_setup():
    """Context manager: charge the enclosed wall time as setup."""
    start = time.perf_counter()
    try:
        yield
    finally:
        add_setup_seconds(time.perf_counter() - start)


# ----------------------------------------------------------------------
# The cache
# ----------------------------------------------------------------------
@dataclass
class CacheStats:
    """Hit/miss counters, mostly for tests and the bench artifact."""

    hierarchy_hits: int = 0
    hierarchy_misses: int = 0
    partition_hits: int = 0
    partition_misses: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hierarchy_hits": self.hierarchy_hits,
            "hierarchy_misses": self.hierarchy_misses,
            "partition_hits": self.partition_hits,
            "partition_misses": self.partition_misses,
        }


@dataclass
class TopologyCache:
    """Content-addressed store of hierarchies, route tables, partitions."""

    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self._hierarchies: Dict[TopologyKey, Any] = {}

    # -- hierarchies ----------------------------------------------------
    def hierarchy(self, key: TopologyKey) -> Any:
        """The (shared) hierarchy for ``key``, building it on first use."""
        cached = self._hierarchies.get(key)
        if cached is not None:
            self.stats.hierarchy_hits += 1
            return cached
        self.stats.hierarchy_misses += 1
        built = _build_hierarchy(key)
        self._hierarchies[key] = built
        return built

    def grid(self, r: int, max_level: int) -> Any:
        """Shared base-``r`` grid hierarchy (``grid_hierarchy`` memoized)."""
        from .keys import grid_key

        return self.hierarchy(grid_key(r, max_level))

    def strip(self, r: int, max_level: int) -> Any:
        """Shared strip hierarchy (``strip_hierarchy`` memoized)."""
        from .keys import strip_key

        return self.hierarchy(strip_key(r, max_level))

    # -- route tables ---------------------------------------------------
    def routes(self, tiling: Any) -> RouteTable:
        """The shared :class:`RouteTable` for ``tiling`` (by identity).

        The table rides on the tiling object itself (same pure-memoization
        style as the tilings' internal ``_nbr_cache``), so it is shared by
        every router over that tiling and dies with it — no global map
        that would pin tilings alive.
        """
        table = getattr(tiling, "_repro_route_table", None)
        if table is None:
            table = RouteTable(tiling)
            tiling._repro_route_table = table
        return table

    # -- distance partitions --------------------------------------------
    def regions_at_distance(self, tiling: Any, center: Any, distance: int) -> List:
        """Regions exactly ``distance`` from ``center``, in region order.

        Byte-identical to the legacy full scan
        ``[u for u in tiling.regions() if tiling.distance(u, center) == d]``
        (same membership, same order).  Backed by the tiling's shared
        flat :class:`~repro.topo.distances.DistanceTable`: one BFS row
        per center, partitions derived from it in region order.
        """
        from .distances import distance_table

        table = distance_table(tiling)
        if table.index.get(center) in table._partitions:
            self.stats.partition_hits += 1
        else:
            self.stats.partition_misses += 1
        return list(table.partitions(center).get(distance, ()))

    # -- warm-up --------------------------------------------------------
    def warm(self, keys: Iterable[TopologyKey]) -> int:
        """Pre-build hierarchies (and their cluster adjacency) for ``keys``.

        Called by the pool-worker initializer with a sweep's distinct
        topology keys so workers pay construction once, before jobs
        arrive.  Returns how many hierarchies were newly built.
        """
        built = 0
        for key in dict.fromkeys(keys):  # de-dup, stable order
            if key in self._hierarchies:
                continue
            hierarchy = self.hierarchy(key)
            # Touch the cluster neighbor graph so the per-hierarchy
            # memoization is hot too (lookAhead, consistency checks and
            # the trackers all query it).
            for level in hierarchy.levels():
                for cid in hierarchy.clusters_at_level(level):
                    hierarchy.nbrs(cid)
            built += 1
        return built

    def clear(self) -> None:
        """Drop the hierarchy store and reset counters.

        Route tables and distance partitions live on their tiling objects
        and are dropped with them (clearing hierarchies releases the
        cached tilings).
        """
        self._hierarchies.clear()
        self.stats = CacheStats()


def _build_hierarchy(key: TopologyKey) -> Any:
    """Construct the hierarchy a key describes (pure function of the key)."""
    if key.kind == "grid":
        from ..hierarchy.grid import grid_hierarchy

        return grid_hierarchy(key.r, key.max_level)
    if key.kind == "strip":
        from ..hierarchy.strip import strip_hierarchy

        return strip_hierarchy(key.r, key.max_level)
    raise ValueError(f"unknown topology kind {key.kind!r}")  # pragma: no cover


def shared_grid_hierarchy(r: int, max_level: int) -> Any:
    """Grid hierarchy via the process cache when enabled, else fresh."""
    if cache_enabled():
        return topology_cache().grid(r, max_level)
    from ..hierarchy.grid import grid_hierarchy

    return grid_hierarchy(r, max_level)


def shared_strip_hierarchy(r: int, max_level: int) -> Any:
    """Strip hierarchy via the process cache when enabled, else fresh."""
    if cache_enabled():
        return topology_cache().strip(r, max_level)
    from ..hierarchy.strip import strip_hierarchy

    return strip_hierarchy(r, max_level)


# ----------------------------------------------------------------------
# Process singleton
# ----------------------------------------------------------------------
_CACHE: TopologyCache = TopologyCache()


def topology_cache() -> TopologyCache:
    """The per-process :class:`TopologyCache` singleton."""
    return _CACHE


def reset_topology_cache() -> TopologyCache:
    """Replace the singleton with an empty cache (returns the new one)."""
    global _CACHE
    _CACHE = TopologyCache()
    return _CACHE
