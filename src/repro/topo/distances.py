"""Flat region-distance tables, shared content-addressed per tiling.

The find path queries region-graph distances in two places: the
C-gcast delay/cost fallback (``head_distance`` between cluster heads
outside the enumerated §II-C.3 relations) and the distance-partition
lookups of the find experiments (``regions_at_distance``).  Both used
to bottom out in :meth:`~repro.geometry.tiling.Tiling.distance` — a
closed form for grids but a per-source BFS with dict-of-dict caching
for graph tilings, re-run per consumer.

:class:`DistanceTable` precomputes one *row* per source region — a flat
``array('i')`` indexed by the dense region index (position in
``tiling.regions()`` order) — and derives the distance partitions from
it.  Like route tables (:meth:`~repro.topo.cache.TopologyCache.routes`)
the table rides on the tiling object itself, so every consumer of the
same world shares one table and it dies with the tiling; content
addressing comes for free because tilings themselves are shared via the
topology cache.

Rows are BFS over the neighbor graph, so values are identical to
``tiling.distance`` for every tiling type (the grid closed form *is*
the 8-neighborhood BFS distance), which the equivalence test pins.
"""

from __future__ import annotations

from array import array
from collections import deque
from typing import Any, Dict, List, Tuple


class DistanceTable:
    """All-pairs region distances as lazily built flat rows.

    Args:
        tiling: Any :class:`~repro.geometry.tiling.Tiling`; its
            ``regions()`` order fixes the dense index.
    """

    __slots__ = ("_tiling", "order", "index", "_rows", "_partitions")

    def __init__(self, tiling: Any) -> None:
        self._tiling = tiling
        #: Dense index → region id, in ``tiling.regions()`` order.
        self.order: Tuple[Any, ...] = tuple(tiling.regions())
        #: Region id → dense index.
        self.index: Dict[Any, int] = {
            rid: i for i, rid in enumerate(self.order)
        }
        self._rows: Dict[int, array] = {}
        self._partitions: Dict[int, Dict[int, tuple]] = {}

    def __len__(self) -> int:
        return len(self.order)

    def row(self, src: Any) -> array:
        """Distances from ``src`` to every region, dense-indexed."""
        i = self.index[src]
        row = self._rows.get(i)
        if row is None:
            row = self._bfs_row(src)
            self._rows[i] = row
        return row

    def distance(self, a: Any, b: Any) -> int:
        """Region-graph distance (== ``tiling.distance(a, b)``)."""
        return self.row(a)[self.index[b]]

    def partitions(self, center: Any) -> Dict[int, tuple]:
        """Regions grouped by distance from ``center``.

        Each group preserves ``tiling.regions()`` order — byte-identical
        membership and order to the legacy full-scan filter.
        """
        i = self.index[center]
        partition = self._partitions.get(i)
        if partition is None:
            row = self.row(center)
            groups: Dict[int, List[Any]] = {}
            for j, rid in enumerate(self.order):
                groups.setdefault(row[j], []).append(rid)
            partition = {d: tuple(rids) for d, rids in groups.items()}
            self._partitions[i] = partition
        return partition

    def _bfs_row(self, src: Any) -> array:
        tiling = self._tiling
        index = self.index
        row = array("i", [-1] * len(self.order))
        row[index[src]] = 0
        queue = deque((src,))
        while queue:
            u = queue.popleft()
            du = row[index[u]]
            for v in tiling.neighbors(u):
                j = index[v]
                if row[j] < 0:
                    row[j] = du + 1
                    queue.append(v)
        return row


def distance_table(tiling: Any) -> DistanceTable:
    """The shared :class:`DistanceTable` for ``tiling`` (by identity).

    Rides on the tiling object (the :meth:`TopologyCache.routes`
    pattern), so every hierarchy/router/experiment over one world
    amortizes the same rows.
    """
    table = getattr(tiling, "_repro_distance_table", None)
    if table is None:
        table = DistanceTable(tiling)
        tiling._repro_distance_table = table
    return table
