"""Content-addressed topology keys.

A :class:`TopologyKey` freezes everything a hierarchy construction
depends on, so it can serve as a cache key in the parent process, travel
(pickled) to pool workers for pre-warming, and be compared across sweep
jobs to find the distinct topologies a sweep will touch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

#: Hierarchy kinds the cache knows how to build from a key alone.
KINDS = ("grid", "strip")


@dataclass(frozen=True)
class TopologyKey:
    """Frozen description of one hierarchy construction.

    Attributes:
        kind: ``"grid"`` or ``"strip"`` — the construction family.
        r: Base (block fan-out) of the clustering.
        max_level: Top cluster level.
    """

    kind: str
    r: int
    max_level: int

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown topology kind {self.kind!r}; expected {KINDS}")
        if self.r < 2:
            raise ValueError("topology base r must be >= 2")
        if self.max_level < 1:
            raise ValueError("max_level must be >= 1")


def grid_key(r: int, max_level: int) -> TopologyKey:
    """Key for the base-``r`` grid hierarchy (``repro.hierarchy.grid``)."""
    return TopologyKey("grid", r, max_level)


def strip_key(r: int, max_level: int) -> TopologyKey:
    """Key for the 1-D strip hierarchy (``repro.hierarchy.strip``)."""
    return TopologyKey("strip", r, max_level)


def key_for_config(config: Any) -> Optional[TopologyKey]:
    """The topology key of a :class:`~repro.scenario.ScenarioConfig`.

    Returns None when the config carries an explicit pre-built
    ``hierarchy`` — those are the caller's objects, not cacheable
    content.
    """
    if getattr(config, "hierarchy", None) is not None:
        return None
    return grid_key(config.r, config.max_level)
