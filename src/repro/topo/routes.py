"""Precomputed shortest-path tables over a tiling's region graph.

A :class:`RouteTable` replaces per-call BFS with per-source BFS *parent
trees*, computed once and reused for every destination.  Trees are
keyed by the frozen down-set they avoid, so toggling regions down and
back up never recomputes anything that was already known: the table for
a previously seen down-set (in particular the empty one) is still there
when the down-set shrinks back.

Determinism: BFS explores ``tiling.neighbors(cur)`` in the tilings'
sorted order and records the first discoverer of each region as its
parent.  Early termination (the legacy per-call BFS stopped at the
destination) cannot change any parent assigned before the stop, so the
path reconstructed from a full tree is byte-for-byte the path the
legacy BFS returned — goldens are unaffected.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..geometry.regions import RegionId
from ..geometry.tiling import Tiling

#: Region down-set, frozen for use as a cache key.
DownSet = FrozenSet[RegionId]

EMPTY_DOWN: DownSet = frozenset()

#: Retained distinct down-sets; older ones are evicted LRU (they are
#: recomputable, so eviction only costs time, never correctness).
MAX_DOWN_SETS = 64


class RouteTable:
    """Shortest-path oracle for one tiling, layered by down-set.

    Args:
        tiling: The region graph.

    One table is shared by every router over the same tiling object (see
    :meth:`repro.topo.cache.TopologyCache.routes`); callers pass their
    own frozen down-set per query.
    """

    def __init__(self, tiling: Tiling) -> None:
        self.tiling = tiling
        # down-set -> source -> (parent tree, distance map)
        self._layers: "OrderedDict[DownSet, Dict[RegionId, Tuple[dict, dict]]]" = (
            OrderedDict()
        )
        self.tree_builds = 0
        self.tree_hits = 0

    # ------------------------------------------------------------------
    # Tree construction
    # ------------------------------------------------------------------
    def _tree(self, src: RegionId, down: DownSet) -> Tuple[dict, dict]:
        layer = self._layers.get(down)
        if layer is None:
            layer = self._layers[down] = {}
            if len(self._layers) > MAX_DOWN_SETS:
                self._layers.popitem(last=False)
        else:
            self._layers.move_to_end(down)
        cached = layer.get(src)
        if cached is not None:
            self.tree_hits += 1
            return cached
        self.tree_builds += 1
        parent: Dict[RegionId, RegionId] = {src: src}
        dist: Dict[RegionId, int] = {src: 0}
        frontier = deque([src])
        neighbors = self.tiling.neighbors
        while frontier:
            cur = frontier.popleft()
            for nxt in neighbors(cur):
                if nxt not in parent and nxt not in down:
                    parent[nxt] = cur
                    dist[nxt] = dist[cur] + 1
                    frontier.append(nxt)
        layer[src] = (parent, dist)
        return parent, dist

    @staticmethod
    def _walk_back(parent: dict, src: RegionId, dest: RegionId) -> List[RegionId]:
        path = [dest]
        while path[-1] != src:
            path.append(parent[path[-1]])
        path.reverse()
        return path

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def live_path(
        self, src: RegionId, dest: RegionId, down: DownSet = EMPTY_DOWN
    ) -> Optional[List[RegionId]]:
        """Shortest path avoiding ``down``, or None when none exists
        (including when an endpoint itself is down)."""
        if src in down or dest in down:
            return None
        parent, _ = self._tree(src, down)
        if dest not in parent:
            return None
        return self._walk_back(parent, src, dest)

    def path(
        self, src: RegionId, dest: RegionId, down: DownSet = EMPTY_DOWN
    ) -> List[RegionId]:
        """Shortest live path, falling back to the down-agnostic one.

        Mirrors the legacy router semantics: when the down-set
        disconnects the endpoints (or an endpoint is down), the
        down-agnostic shortest path is returned — the message then dies
        at the failed hop, like forwarding into a dead region.  Raises
        ``ValueError`` only when the tiling itself is disconnected.
        """
        path = self.live_path(src, dest, down)
        if path is None and down:
            path = self.live_path(src, dest, EMPTY_DOWN)
        if path is None:
            raise ValueError(f"no route from {src!r} to {dest!r}")
        return path

    def distance(
        self, src: RegionId, dest: RegionId, down: DownSet = EMPTY_DOWN
    ) -> Optional[int]:
        """Hop count of the shortest live path, or None when unreachable."""
        if src in down or dest in down:
            return None
        _, dist = self._tree(src, down)
        return dist.get(dest)

    def next_hop(
        self, src: RegionId, dest: RegionId, down: DownSet = EMPTY_DOWN
    ) -> Optional[RegionId]:
        """First forwarding hop from ``src`` toward ``dest``.

        Returns None when ``dest`` is unreachable under ``down``, and
        ``src`` itself when ``src == dest``.
        """
        path = self.live_path(src, dest, down)
        if path is None:
            return None
        return path[1] if len(path) > 1 else src

    def distances_from(
        self, src: RegionId, down: DownSet = EMPTY_DOWN
    ) -> Dict[RegionId, int]:
        """Distance map from ``src`` to every reachable region (a copy)."""
        if src in down:
            return {}
        _, dist = self._tree(src, down)
        return dict(dist)
