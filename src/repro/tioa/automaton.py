"""Timed I/O automaton base class.

Discrete transitions are methods; the analog clock ``now`` is provided
by the executor the automaton is attached to.  Subclasses implement:

* ``input_<name>(**payload)`` — effect of an input action,
* :meth:`enabled_outputs` — the locally controlled actions whose
  preconditions currently hold, in the order they should fire,
* ``output_<name>(**payload)`` / ``internal_<name>(**payload)`` — the
  effect of performing a locally controlled action.

The TIOA urgency convention ("trajectories stop when any precondition is
satisfied") is realised by the executor: after every input delivery or
timer wakeup it repeatedly performs enabled actions at the current time
until none remain.
"""

from __future__ import annotations

from typing import Any, List, Optional

from .actions import Action, ActionKind


class AutomatonError(RuntimeError):
    """Protocol violation inside an automaton (bad dispatch, no executor)."""


class TimedAutomaton:
    """Base class for all timed automata in the system.

    Attributes:
        name: Unique name within one executor (used for tracing/routing).
        failed: Stopping-failure flag.  A failed automaton ignores inputs
            and enables no locally controlled actions until restarted.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.failed = False
        self._executor = None
        # Resolved handler caches: action name → bound method.  getattr
        # with an f-string key is hot; resolution happens once per name.
        self._input_handlers: dict = {}
        self._perform_handlers: dict = {}

    # ------------------------------------------------------------------
    # Executor binding
    # ------------------------------------------------------------------
    def attach(self, executor) -> None:
        self._executor = executor

    @property
    def executor(self):
        if self._executor is None:
            raise AutomatonError(f"automaton {self.name!r} is not attached")
        return self._executor

    @property
    def now(self) -> float:
        """Current (accurate) local clock, equal to real time."""
        executor = self._executor
        if executor is None:
            raise AutomatonError(f"automaton {self.name!r} is not attached")
        return executor.sim.now

    def trace(self, kind: str, detail: Any = None) -> None:
        executor = self._executor
        if executor is None:
            raise AutomatonError(f"automaton {self.name!r} is not attached")
        trace = executor.sim.trace
        if trace.enabled:
            trace.record(executor.sim.now, self.name, kind, detail)

    # ------------------------------------------------------------------
    # Failure model (stopping failures + restart, §II-C.1/2)
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Stopping failure: no further local steps until restart."""
        if not self.failed:
            self.failed = True
            self.on_failed()

    def restart(self) -> None:
        """Restart from an initial state."""
        if self.failed:
            self.failed = False
            self.reset_state()
            self.on_restarted()
            self.executor.kick(self)

    def reset_state(self) -> None:
        """Restore the initial state.  Subclasses with state must override."""

    def on_failed(self) -> None:
        """Hook called on failure (e.g. to cancel timers)."""

    def on_restarted(self) -> None:
        """Hook called after a restart."""

    # ------------------------------------------------------------------
    # Discrete transitions
    # ------------------------------------------------------------------
    def handle_input(self, action: Action) -> None:
        """Apply an input action's effect (no-op while failed)."""
        if self.failed:
            return
        if action.kind is not ActionKind.INPUT:
            raise AutomatonError(f"{self.name!r}: {action!r} is not an input")
        handler = self._input_handlers.get(action.name)
        if handler is None:
            handler = getattr(self, f"input_{action.name}", None)
            if handler is None:
                raise AutomatonError(f"{self.name!r} has no handler for {action!r}")
            self._input_handlers[action.name] = handler
        handler(**dict(action.payload))

    def enabled_outputs(self) -> List[Action]:
        """Locally controlled actions whose preconditions hold right now.

        The executor performs the first returned action, re-queries, and
        repeats; returning them in precedence order makes executions
        deterministic.
        """
        return []

    def perform(self, action: Action) -> None:
        """Apply a locally controlled action's effect."""
        if self.failed:
            raise AutomatonError(f"{self.name!r} performed {action!r} while failed")
        key = (action.kind, action.name)
        handler = self._perform_handlers.get(key)
        if handler is None:
            prefix = "output_" if action.kind is ActionKind.OUTPUT else "internal_"
            handler = getattr(self, f"{prefix}{action.name}", None)
            if handler is None:
                raise AutomatonError(f"{self.name!r} has no effect for {action!r}")
            self._perform_handlers[key] = handler
        handler(**dict(action.payload))

    # ------------------------------------------------------------------
    # Timer wakeups
    # ------------------------------------------------------------------
    def on_wakeup(self, tag: Optional[str] = None) -> None:
        """Called at a time previously requested via ``Timer``/executor."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = " FAILED" if self.failed else ""
        return f"<{type(self).__name__} {self.name}{status}>"
