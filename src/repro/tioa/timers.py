"""Timer helper for timed automata.

A :class:`Timer` models one real-valued deadline variable like the
``timer`` of Fig. 2: it can be armed to an absolute time, re-armed
(cancelling the previous deadline), disarmed, and read.  When the
deadline is reached the owning automaton's ``on_wakeup(tag)`` runs and
its enabled outputs drain, which is how ``now = timer`` preconditions
fire.
"""

from __future__ import annotations

import math
from .automaton import TimedAutomaton

INFINITY = math.inf


class Timer:
    """One deadline variable owned by an automaton.

    Attributes:
        deadline: Current deadline (``math.inf`` when disarmed).

    ``priority`` orders the wakeup against same-instant events: the
    default 0 keeps insertion order (a wakeup armed before a message
    was sent fires first on a tie), while 1 fires strictly after every
    same-instant priority-0 event regardless of when the timer was
    (re-)armed — the deterministic choice for timers that are re-armed
    on unrelated activity, like the tracker's shared lane wheel (see
    ``Tracker._rearm_wheel``).
    """

    #: Class-level fallback so timers pickled before the priority knob
    #: existed unpickle into default-ordered timers.
    _priority = 0

    def __init__(self, owner: TimedAutomaton, tag: str, priority: int = 0) -> None:
        self._owner = owner
        self._tag = tag
        self._priority = priority
        self._event = None
        self.deadline: float = INFINITY

    @property
    def armed(self) -> bool:
        return self.deadline != INFINITY

    def expired(self) -> bool:
        """True when armed and the deadline has been reached."""
        return self.armed and self._owner.now >= self.deadline

    def arm(self, deadline: float) -> None:
        """Set the deadline, replacing any previous one."""
        self.disarm()
        if deadline < self._owner.now:
            raise ValueError(
                f"timer {self._tag!r} deadline {deadline} is in the past "
                f"(now={self._owner.now})"
            )
        self.deadline = deadline
        self._event = self._owner.executor.wake_at(
            self._owner, deadline, tag=self._tag, priority=self._priority
        )

    def arm_after(self, delay: float) -> None:
        self.arm(self._owner.now + delay)

    def disarm(self) -> None:
        """Clear the deadline (idempotent)."""
        if self._event is not None:
            self._owner.executor.sim.cancel(self._event)
            self._event = None
        self.deadline = INFINITY

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timer({self._tag!r}, deadline={self.deadline})"
