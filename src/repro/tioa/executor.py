"""Executor: binds timed automata to the discrete-event simulator.

The executor realises TIOA semantics operationally:

* **Input delivery** — :meth:`deliver` schedules an input action at the
  current time plus a delay; on firing, the effect runs and the
  automaton's enabled outputs drain.
* **Urgency** — after any discrete step, all enabled locally controlled
  actions fire immediately (zero time), in the order the automaton
  reports them; this is the "trajectories stop when any precondition is
  satisfied" clause of Fig. 2.
* **Output routing** — subscribers registered with :meth:`on_output`
  observe every performed output (communication services use this to
  pick up ``cTOBsend`` actions).
* **Wakeups** — :meth:`wake_at` schedules ``on_wakeup`` for timer-driven
  preconditions like ``now = timer``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..sim.engine import Simulator
from ..sim.event_queue import Event
from .actions import Action
from .automaton import AutomatonError, TimedAutomaton

# An output subscriber receives (automaton, action).
OutputSubscriber = Callable[[TimedAutomaton, Action], None]

_MAX_DRAIN_STEPS = 100_000


class Executor:
    """Runs a set of timed automata over one simulator."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._automata: Dict[str, TimedAutomaton] = {}
        self._subscribers: List[OutputSubscriber] = []

    # ------------------------------------------------------------------
    # Registration and lookup
    # ------------------------------------------------------------------
    def register(self, automaton: TimedAutomaton) -> TimedAutomaton:
        if automaton.name in self._automata:
            raise AutomatonError(f"duplicate automaton name {automaton.name!r}")
        self._automata[automaton.name] = automaton
        automaton.attach(self)
        return automaton

    def automaton(self, name: str) -> TimedAutomaton:
        try:
            return self._automata[name]
        except KeyError:
            raise AutomatonError(f"unknown automaton {name!r}") from None

    def automata(self) -> List[TimedAutomaton]:
        return [self._automata[k] for k in sorted(self._automata)]

    @property
    def now(self) -> float:
        return self.sim.now

    def trace(self, automaton: TimedAutomaton, kind: str, detail: Any = None) -> None:
        trace = self.sim.trace
        if trace.enabled:
            trace.record(self.sim.now, automaton.name, kind, detail)

    # ------------------------------------------------------------------
    # Output observation
    # ------------------------------------------------------------------
    def on_output(self, subscriber: OutputSubscriber) -> None:
        """Observe every performed output action (used by channels)."""
        self._subscribers.append(subscriber)

    # ------------------------------------------------------------------
    # Discrete execution
    # ------------------------------------------------------------------
    def deliver(
        self,
        target: TimedAutomaton,
        action: Action,
        delay: float = 0.0,
        priority: int = 0,
    ) -> Event:
        """Schedule an input action at ``now + delay``."""

        def fire() -> None:
            if target.failed:
                return
            self.trace(target, "input", action)
            target.handle_input(action)
            self._drain(target)

        return self.sim.call_after(delay, fire, priority=priority, tag=f"in:{target.name}")

    def wake_at(
        self,
        target: TimedAutomaton,
        time: float,
        tag: Optional[str] = None,
        priority: int = 0,
    ) -> Event:
        """Schedule ``target.on_wakeup(tag)`` at absolute ``time``."""

        def fire() -> None:
            if target.failed:
                return
            target.on_wakeup(tag)
            self._drain(target)

        return self.sim.call_at(time, fire, priority=priority, tag=f"wake:{target.name}")

    def kick(self, target: TimedAutomaton) -> None:
        """Drain any already-enabled actions of ``target`` right now."""
        self._drain(target)

    def _drain(self, automaton: TimedAutomaton) -> None:
        """Fire enabled locally controlled actions until quiescent."""
        trace = self.sim.trace
        subscribers = self._subscribers
        enabled_outputs = automaton.enabled_outputs
        perform = automaton.perform
        for _ in range(_MAX_DRAIN_STEPS):
            if automaton.failed:
                return
            enabled = enabled_outputs()
            if not enabled:
                return
            action = enabled[0]
            if trace.enabled:
                trace.record(self.sim.now, automaton.name, "perform", action)
            perform(action)
            for subscriber in subscribers:
                subscriber(automaton, action)
        raise AutomatonError(
            f"automaton {automaton.name!r} did not quiesce after "
            f"{_MAX_DRAIN_STEPS} locally controlled steps"
        )
