"""Timed I/O Automata framework (Kaynar–Lynch–Segala–Vaandrager style)."""

from .actions import Action, ActionKind
from .automaton import AutomatonError, TimedAutomaton
from .composition import Composition
from .executor import Executor
from .timers import INFINITY, Timer

__all__ = [
    "Action",
    "ActionKind",
    "AutomatonError",
    "Composition",
    "Executor",
    "INFINITY",
    "TimedAutomaton",
    "Timer",
]
