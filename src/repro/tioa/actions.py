"""Actions of timed I/O automata.

An :class:`Action` is a named occurrence with a payload.  The kind
(input / output / internal) follows TIOA [13]: inputs arrive from the
environment, outputs are locally controlled and fire as soon as their
precondition holds (the trajectory "stops when" clause), internal
actions are locally controlled but invisible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple


class ActionKind(enum.Enum):
    INPUT = "input"
    OUTPUT = "output"
    INTERNAL = "internal"


@dataclass(frozen=True)
class Action:
    """One action occurrence.

    Attributes:
        name: Action name, e.g. ``"cTOBrcv"``.
        kind: Input / output / internal.
        payload: Immutable key-value payload, e.g. the message and sender.
    """

    name: str
    kind: ActionKind
    payload: Tuple[Tuple[str, Any], ...] = ()

    @staticmethod
    def input(name: str, **kwargs: Any) -> "Action":
        return Action(name, ActionKind.INPUT, _freeze(kwargs))

    @staticmethod
    def output(name: str, **kwargs: Any) -> "Action":
        return Action(name, ActionKind.OUTPUT, _freeze(kwargs))

    @staticmethod
    def internal(name: str, **kwargs: Any) -> "Action":
        return Action(name, ActionKind.INTERNAL, _freeze(kwargs))

    @property
    def kwargs(self) -> Dict[str, Any]:
        return dict(self.payload)

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.payload:
            if k == key:
                return v
        return default

    def __repr__(self) -> str:
        args = ", ".join(f"{k}={v!r}" for k, v in self.payload)
        return f"{self.kind.value}:{self.name}({args})"


def _freeze(kwargs: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    return tuple(sorted(kwargs.items()))
