"""Composition of timed automata by action matching.

Classical TIOA composition synchronises equal-named outputs and inputs.
Our system mostly communicates through explicit channel services
(V-bcast, C-gcast), but the generic :class:`Composition` is used by the
layer assembly and in tests: it routes outputs of member automata to
inputs of other members according to registered bindings.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .actions import Action
from .automaton import TimedAutomaton
from .executor import Executor

# A matcher inspects (source automaton, action) and returns the list of
# (target automaton, input action, delay) deliveries it induces.
Binding = Callable[[TimedAutomaton, Action], List[tuple]]


class Composition:
    """Routes outputs between automata registered on one executor."""

    def __init__(self, executor: Executor) -> None:
        self.executor = executor
        self._bindings: List[Binding] = []
        executor.on_output(self._route)

    def bind(self, binding: Binding) -> None:
        """Register a routing rule applied to every output action."""
        self._bindings.append(binding)

    def bind_name(
        self,
        output_name: str,
        target: TimedAutomaton,
        input_name: Optional[str] = None,
        delay: float = 0.0,
    ) -> None:
        """Route every output named ``output_name`` to ``target`` as an input.

        The payload is carried over unchanged; the input name defaults to
        the output name (classical same-name synchronisation).
        """
        in_name = input_name if input_name is not None else output_name

        def binding(source: TimedAutomaton, action: Action) -> List[tuple]:
            if action.name != output_name or source is target:
                return []
            return [(target, Action.input(in_name, **action.kwargs), delay)]

        self.bind(binding)

    def _route(self, source: TimedAutomaton, action: Action) -> None:
        for binding in self._bindings:
            for target, input_action, delay in binding(source, action):
                self.executor.deliver(target, input_action, delay=delay)
