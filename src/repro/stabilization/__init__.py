"""Self-stabilizing VINESTALK (§VII extension): heartbeats + re-anchor."""

from .stabilizing_tracker import (
    Heartbeat,
    HeartbeatAck,
    StabilizationConfig,
    StabilizingTracker,
)
from .system import StabilizingVineStalk

__all__ = [
    "Heartbeat",
    "HeartbeatAck",
    "StabilizationConfig",
    "StabilizingTracker",
    "StabilizingVineStalk",
]
