"""Self-stabilizing VINESTALK system assembly (§VII extension).

:class:`StabilizingVineStalk` wires :class:`StabilizingTracker`
processes with a client-side periodic grow re-anchor, plus fault
injection and convergence measurement used by the stabilization tests
and benchmark.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..core.consistency import check_consistent
from ..core.state import capture_snapshot
from ..core.vinestalk import VineStalk
from ..hierarchy.cluster import ClusterId
from ..hierarchy.hierarchy import ClusterHierarchy
from .stabilizing_tracker import StabilizationConfig, StabilizingTracker


class StabilizingVineStalk(VineStalk):
    """VINESTALK whose trackers self-stabilize through heartbeats."""

    def __init__(
        self,
        hierarchy: ClusterHierarchy,
        delta: float = 1.0,
        e: float = 0.5,
        schedule=None,
        sim=None,
        stabilization: Optional[StabilizationConfig] = None,
    ) -> None:
        config = stabilization if stabilization is not None else StabilizationConfig()
        self.stabilization = config

        outer = self

        class _ConfiguredTracker(StabilizingTracker):
            def __init__(self, hierarchy, clust, cgcast, schedule, delta, e):
                super().__init__(
                    hierarchy, clust, cgcast, schedule, delta, e,
                    stabilization=outer.stabilization,
                )

        self.tracker_cls = _ConfiguredTracker
        super().__init__(hierarchy, delta=delta, e=e, schedule=schedule, sim=sim)
        for tracker in self.trackers.values():
            tracker.start_heartbeats()
        self._refresh_running = False

    # ------------------------------------------------------------------
    # Client-side re-anchor (STALK's level-0 refresh)
    # ------------------------------------------------------------------
    def start_anchor_refresh(self) -> None:
        """Periodically re-send the grow from the evader's client."""
        if self._refresh_running:
            return
        self._refresh_running = True
        self._schedule_refresh()

    def stop_anchor_refresh(self) -> None:
        self._refresh_running = False

    def _refresh_interval(self) -> float:
        return self.stabilization.period(0) * self.stabilization.refresh_periods

    def _schedule_refresh(self) -> None:
        self.sim.call_after(self._refresh_interval(), self._refresh_tick,
                            tag="anchor-refresh")

    def _refresh_tick(self) -> None:
        if not self._refresh_running:
            return
        if self.evader is not None and self.evader.region is not None:
            client = self.clients.get(self.evader.region)
            if client is not None and not client.failed and client.evader_here:
                from ..core.messages import Grow

                client.ctob_send(Grow(cid=client.local_cluster()))
        self._schedule_refresh()

    # ------------------------------------------------------------------
    # Fault injection and convergence measurement
    # ------------------------------------------------------------------
    def corrupt(self, rng: random.Random, count: int) -> List[ClusterId]:
        """Corrupt ``count`` random tracker pointer variables in place.

        Returns the clusters touched.  Values are drawn from the legal
        type domain (plus a few illegal ones) so both the lease and the
        type-repair machinery get exercised.
        """
        touched: List[ClusterId] = []
        clusters = sorted(self.trackers)
        for _ in range(count):
            clust = rng.choice(clusters)
            tracker = self.trackers[clust]
            field = rng.choice(["c", "p", "nbrptup", "nbrptdown"])
            h = self.hierarchy
            domain: List = [None, clust]
            domain.extend(h.nbrs(clust))
            domain.extend(h.children(clust))
            parent = h.parent(clust)
            if parent is not None:
                domain.append(parent)
            setattr(tracker, field, rng.choice(domain))
            touched.append(clust)
        return touched

    def is_converged(self) -> bool:
        """Consistent tracking structure for the current evader position."""
        if self.evader is None or self.evader.region is None:
            return False
        snapshot = capture_snapshot(self)
        return not check_consistent(snapshot, self.hierarchy, self.evader.region)

    def time_to_converge(self, max_time: float, probe: float = 10.0) -> Optional[float]:
        """Run until converged; returns elapsed time or None on timeout."""
        start = self.sim.now
        while self.sim.now - start < max_time:
            if self.is_converged():
                return self.sim.now - start
            self.sim.run_until(self.sim.now + probe)
        return self.time_to_converge_final_check(start)

    def time_to_converge_final_check(self, start: float) -> Optional[float]:
        if self.is_converged():
            return self.sim.now - start
        return None

    def total_repairs(self) -> int:
        return sum(t.repairs for t in self.trackers.values())
