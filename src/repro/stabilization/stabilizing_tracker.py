"""Self-stabilizing Tracker (§VII extension).

The paper sketches how VINESTALK becomes self-stabilizing: the original
STALK achieves stabilization "mainly through heartbeats", and every
building block (VSA emulation, geocast) is already self-stabilizing, so
the tracking layer needs the same heartbeat treatment.  This module
implements that sketch:

* **Path heartbeats.**  Every process on the path (``p ≠ ⊥``) sends a
  ``heartbeat`` to its path parent each period.  A process with
  ``c ≠ ⊥`` that misses ``miss_limit`` consecutive periods from its
  child concludes the child (or the channel) is corrupt, clears ``c``
  and behaves as if a shrink arrived — the stale branch below dissolves
  bottom-up exactly like ordinary deadwood.
* **Parent leases.**  Heartbeats are acknowledged (``heartbeatAck``).  A
  process whose parent stops acknowledging clears ``p`` (after notifying
  neighbors with the ordinary ``shrinkUpd``), so orphaned segments
  detach instead of absorbing finds forever.
* **Anchor refresh.**  The client co-located with the evader re-sends
  its ``grow`` every refresh period (the level-0 re-anchor of STALK).
  After arbitrary state corruption this is what rebuilds a correct path;
  the heartbeat machinery guarantees the corrupted remnants die.
* **Secondary-pointer leases.**  ``growPar``/``growNbr`` announcements
  are re-broadcast with each heartbeat round and neighbors expire
  secondary pointers that have not been refreshed recently, so stale
  ``nbrptup``/``nbrptdown`` values cannot mislead finds forever.

Fault containment mirrors STALK's: corruption at level ``l`` is
repaired by timers proportional to level-``l`` periods, without global
resets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.messages import Grow, GrowNbr, GrowPar, ShrinkUpd, TrackerMessage
from ..core.tracker import BOTTOM, Tracker
from ..hierarchy.cluster import ClusterId
from ..tioa.timers import Timer


@dataclass(frozen=True)
class Heartbeat(TrackerMessage):
    """Child ``cid`` tells its path parent it is alive and attached."""

    cid: ClusterId


@dataclass(frozen=True)
class HeartbeatAck(TrackerMessage):
    """Parent ``cid`` confirms it still holds the sender as child."""

    cid: ClusterId


@dataclass(frozen=True)
class StabilizationConfig:
    """Heartbeat tuning.

    Attributes:
        period_base: Heartbeat period at level 0; level ``l`` uses
            ``period_base * scale**l`` so high levels beat slower, giving
            STALK-style per-level fault containment.
        scale: Per-level period multiplier (the grid base is natural).
        miss_limit: Consecutive missed periods before a pointer is
            declared stale.
        refresh_periods: Client grow re-anchor interval, in level-0
            heartbeat periods.
    """

    period_base: float = 20.0
    scale: float = 2.0
    miss_limit: int = 3
    refresh_periods: int = 2

    def period(self, level: int) -> float:
        return self.period_base * self.scale**level

    def timeout(self, level: int) -> float:
        return self.period(level) * self.miss_limit


class StabilizingTracker(Tracker):
    """Tracker with heartbeat-based self-stabilization."""

    def __init__(self, hierarchy, clust, cgcast, schedule, delta, e,
                 stabilization: Optional[StabilizationConfig] = None) -> None:
        super().__init__(hierarchy, clust, cgcast, schedule, delta, e)
        self.config = stabilization if stabilization is not None else StabilizationConfig()
        self.hb_timer = Timer(self, "heartbeat")
        # Last time we heard a heartbeat from our child / an ack from
        # our parent / a secondary-pointer refresh from each neighbor.
        self.child_heard: Optional[float] = None
        self.parent_heard: Optional[float] = None
        self.nbrptup_heard: Optional[float] = None
        self.nbrptdown_heard: Optional[float] = None
        # Level-0 anchor lease: when the self-pointer was last confirmed
        # by a client grow (the evader is really here).
        self.anchor_heard: Optional[float] = None
        self.repairs = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start_heartbeats(self) -> None:
        """Arm the periodic heartbeat timer (call once after assembly)."""
        if not self.hb_timer.armed:
            self.hb_timer.arm(self.now + self.config.period(self.lvl))

    def reset_state(self) -> None:
        super().reset_state()
        self.hb_timer.disarm()
        self.child_heard = None
        self.parent_heard = None
        self.nbrptup_heard = None
        self.nbrptdown_heard = None
        self.anchor_heard = None

    def on_failed(self) -> None:
        super().on_failed()
        self.hb_timer.disarm()

    def on_restarted(self) -> None:
        self.start_heartbeats()

    # ------------------------------------------------------------------
    # Heartbeat round
    # ------------------------------------------------------------------
    def on_wakeup(self, tag: Optional[str] = None) -> None:
        if tag == "heartbeat":
            self._heartbeat_round()
            self.hb_timer.arm(self.now + self.config.period(self.lvl))

    def _heartbeat_round(self) -> None:
        timeout = self.config.timeout(self.lvl)
        self._local_type_repair()
        # 0. Anchor lease: a level-0 self-pointer must be refreshed by
        #    periodic client grows; a stale anchor dissolves like a shrink.
        if self.lvl == 0 and self.c == self.clust:
            if self.anchor_heard is not None and self.now - self.anchor_heard > timeout:
                self.trace("stabilize-drop-anchor", self.clust)
                self.repairs += 1
                self.c = BOTTOM
                self.anchor_heard = None
                if self.p is not BOTTOM:
                    self.timer.arm(self.now + self.schedule.s(self.lvl))
            elif self.anchor_heard is None:
                self.anchor_heard = self.now
        # 1. Beat upward and re-announce our connection type to neighbors.
        if self.p is not BOTTOM:
            self._send(self.p, Heartbeat(cid=self.clust))
            lateral = self.p in self.nbr_clusters
            update = GrowNbr(cid=self.clust) if lateral else GrowPar(cid=self.clust)
            self._queue_to_nbrs(update)
        # 2. Child liveness: a silent child is stale — drop it like a shrink.
        if self.c not in (BOTTOM, self.clust):
            if self.child_heard is not None and self.now - self.child_heard > timeout:
                self.trace("stabilize-drop-child", self.c)
                self.repairs += 1
                self.c = BOTTOM
                self.child_heard = None
                if self.lvl != self.max_level and self.p is not BOTTOM:
                    self.timer.arm(self.now + self.schedule.s(self.lvl))
            elif self.child_heard is None:
                # Start the lease on the first round that observes a child.
                self.child_heard = self.now
        # 3. Parent liveness: an unresponsive parent orphans us.  An
        #    orphan still carrying a live subtree re-grows upward (the
        #    grow timer re-arms exactly as for a fresh grow).
        if self.p is not BOTTOM:
            if self.parent_heard is not None and self.now - self.parent_heard > timeout:
                self.trace("stabilize-drop-parent", self.p)
                self.repairs += 1
                self.p = BOTTOM
                self.parent_heard = None
                self._queue_to_nbrs(ShrinkUpd(cid=self.clust))
                if self.c is not BOTTOM and self.lvl != self.max_level:
                    self.timer.arm(self.now + self.schedule.g(self.lvl))
            elif self.parent_heard is None:
                self.parent_heard = self.now
        # 4. Secondary-pointer leases.
        if self.nbrptup is not BOTTOM:
            if self.nbrptup_heard is not None and self.now - self.nbrptup_heard > timeout:
                self.trace("stabilize-expire-nbrptup", self.nbrptup)
                self.nbrptup = BOTTOM
                self.nbrptup_heard = None
            elif self.nbrptup_heard is None:
                self.nbrptup_heard = self.now
        if self.nbrptdown is not BOTTOM:
            if (
                self.nbrptdown_heard is not None
                and self.now - self.nbrptdown_heard > timeout
            ):
                self.trace("stabilize-expire-nbrptdown", self.nbrptdown)
                self.nbrptdown = BOTTOM
                self.nbrptdown_heard = None
            elif self.nbrptdown_heard is None:
                self.nbrptdown_heard = self.now

    def _local_type_repair(self) -> None:
        """Clear pointers violating the Fig. 2 state typing.

        After arbitrary corruption, pointers may hold values the state
        space forbids.  The key rule (path-segment condition 3a): a
        lateral-connected process (``p ∈ nbrs``) may only have a *child*
        (or self at level 0) as ``c`` — enforcing it locally breaks any
        same-level pointer cycle, which heartbeats alone would sustain.
        """
        h = self.hierarchy
        valid_p = set(self.nbr_clusters)
        if self.parent_cluster is not None:
            valid_p.add(self.parent_cluster)
        if self.p is not BOTTOM and self.p not in valid_p:
            self.trace("stabilize-type-p", self.p)
            self.repairs += 1
            self.p = BOTTOM
        children = set(h.children(self.clust))
        valid_c = children | set(self.nbr_clusters)
        if self.lvl == 0:
            valid_c.add(self.clust)
        if self.c is not BOTTOM and self.c not in valid_c:
            self.trace("stabilize-type-c", self.c)
            self.repairs += 1
            self.c = BOTTOM
        lateral = self.p is not BOTTOM and self.p in self.nbr_clusters
        if lateral and self.c is not BOTTOM and self.c not in children:
            if not (self.lvl == 0 and self.c == self.clust):
                self.trace("stabilize-type-lateral-c", self.c)
                self.repairs += 1
                self.c = BOTTOM
        for attr in ("nbrptup", "nbrptdown"):
            value = getattr(self, attr)
            if value is not BOTTOM and value not in self.nbr_clusters:
                self.trace(f"stabilize-type-{attr}", value)
                setattr(self, attr, BOTTOM)

    # ------------------------------------------------------------------
    # Heartbeat receipts
    # ------------------------------------------------------------------
    def _recv_heartbeat(self, message: Heartbeat, lane) -> None:
        if self.c == message.cid:
            self.child_heard = self.now
            self._send(message.cid, HeartbeatAck(cid=self.clust))
        # A heartbeat from a non-child is stale traffic; ignoring it lets
        # the sender's parent-lease expire and detach it.

    def _recv_heartbeatack(self, message: HeartbeatAck, lane) -> None:
        if self.p == message.cid:
            self.parent_heard = self.now

    # Secondary announcements double as leases.  The heartbeat machinery
    # stabilizes lane 0 (the paper's single-object protocol); extra
    # service lanes only pass through the super() effects.
    def _recv_growpar(self, message: GrowPar, lane) -> None:
        super()._recv_growpar(message, lane)
        if lane is self:
            self.nbrptup_heard = self.now

    def _recv_grownbr(self, message: GrowNbr, lane) -> None:
        super()._recv_grownbr(message, lane)
        if lane is self:
            self.nbrptdown_heard = self.now

    def _recv_grow(self, message: Grow, lane) -> None:
        super()._recv_grow(message, lane)
        if lane is self:
            self.child_heard = self.now
            if self.lvl == 0 and message.cid == self.clust:
                self.anchor_heard = self.now

    def pointer_repairs(self) -> int:
        return self.repairs
