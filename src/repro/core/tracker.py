"""The Tracker subautomaton ``Tracker_{u,lvl}`` (Fig. 2).

One Tracker runs per cluster, hosted at the VSA of the cluster's head
region.  Trackers jointly maintain the tracking path (child pointer
``c``, parent pointer ``p``, secondary pointers ``nbrptup`` /
``nbrptdown``) and service finds (two phases: search, trace).

The translation follows Fig. 2 statement by statement; the two places
where the printed figure and the prose of §IV-B disagree are resolved
in favour of the prose / ``lookAhead`` semantics — see DESIGN.md §3:

1. a received ``grow`` always updates ``c`` (the figure's guard would
   prevent the path junction from repointing);
2. the shrink timer is armed only when ``p ≠ ⊥`` (the figure arms it
   unconditionally below MAX, which could clobber a pending grow timer).

TIOA urgency ("stops when any precondition is satisfied") is realised
by the executor draining :meth:`enabled_outputs` after every input and
wakeup.
"""

from __future__ import annotations

from typing import List, Optional

from ..hierarchy.cluster import ClusterId
from ..hierarchy.hierarchy import ClusterHierarchy
from ..obs._state import OBS as _OBS
from ..obs.events import (
    FindForwarded,
    FindQueryIssued,
    FoundAnnounced,
    GrowSent,
    ShrinkSent,
)
from ..tioa.actions import Action
from ..tioa.automaton import TimedAutomaton
from ..tioa.timers import Timer
from .messages import (
    Find,
    FindAck,
    FindQuery,
    Found,
    Grow,
    GrowNbr,
    GrowPar,
    Shrink,
    ShrinkUpd,
    TrackerMessage,
)
from .timers import TimerSchedule

BOTTOM = None  # ⊥ of Fig. 2

# Payload-free actions are immutable; shared instances avoid rebuilding
# them inside enabled_outputs(), which runs after every discrete step.
_SENDQ_HEAD = Action.output("sendq_head")
_FINDACKQ_HEAD = Action.output("findAckq_head")
_GROW_SEND = Action.output("grow_send")
_SHRINK_SEND = Action.output("shrink_send")
_FOUND_SEND = Action.output("found_send")
_FINDQUERY = Action.internal("findquery")


class Tracker(TimedAutomaton):
    """Cluster process ``clust = cluster(u, lvl)`` with ``h(clust) = u``.

    Args:
        hierarchy: The cluster hierarchy.
        clust: This process's cluster.
        cgcast: C-gcast service for ``cTOBsend``/``cTOBrcv``.
        schedule: Grow/shrink timer schedule satisfying Eq. (1).
        delta: Broadcast delay ``δ`` (for the find neighbor timeout).
        e: Emulation lag ``e`` (same).
    """

    def __init__(
        self,
        hierarchy: ClusterHierarchy,
        clust: ClusterId,
        cgcast,
        schedule: TimerSchedule,
        delta: float,
        e: float,
    ) -> None:
        super().__init__(f"tracker:{clust.level}:{clust.key}")
        self.hierarchy = hierarchy
        self.clust = clust
        self.lvl = clust.level
        self.cgcast = cgcast
        self.schedule = schedule
        self.delta = delta
        self.e = e
        self.max_level = hierarchy.max_level
        # Static cluster environment (deterministic order).
        self.nbr_clusters: List[ClusterId] = hierarchy.nbrs(clust)
        self.parent_cluster: Optional[ClusterId] = hierarchy.parent(clust)

        # --- Fig. 2 state variables -----------------------------------
        self.c: Optional[ClusterId] = BOTTOM
        self.p: Optional[ClusterId] = BOTTOM
        self.nbrptup: Optional[ClusterId] = BOTTOM
        self.nbrptdown: Optional[ClusterId] = BOTTOM
        self.sendq: List[tuple] = []  # (dest, TrackerMessage), FIFO
        self.timer = Timer(self, "timer")
        # --- find-related state ----------------------------------------
        self.nbrtimeout = Timer(self, "nbrtimeout")
        self.findAckq: List[tuple] = []  # (dest, FindAck)
        self.finding = False
        self.find_id = 0  # bookkeeping tag of the find in service
        self._recv_handlers: dict = {}  # message kind → bound _recv_* method

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset_state(self) -> None:
        self.c = BOTTOM
        self.p = BOTTOM
        self.nbrptup = BOTTOM
        self.nbrptdown = BOTTOM
        self.sendq = []
        self.timer.disarm()
        self.nbrtimeout.disarm()
        self.findAckq = []
        self.finding = False
        self.find_id = 0

    def on_failed(self) -> None:
        self.timer.disarm()
        self.nbrtimeout.disarm()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _send(self, dest: ClusterId, message: TrackerMessage) -> None:
        self.cgcast.send_vsa(self.clust, dest, message)

    def _queue_to_nbrs(self, message: TrackerMessage, exclude=None) -> None:
        for nbr in self.nbr_clusters:
            if exclude is not None and nbr == exclude:
                continue
            self.sendq.append((nbr, message))

    @property
    def on_path(self) -> bool:
        """On the tracking path: has a parent pointer or is the root."""
        return self.p is not BOTTOM or self.lvl == self.max_level

    # ------------------------------------------------------------------
    # Input: cTOBrcv — dispatch on message type
    # ------------------------------------------------------------------
    def input_cTOBrcv(self, message: TrackerMessage) -> None:
        kind = message.kind
        handler = self._recv_handlers.get(kind)
        if handler is None:
            handler = getattr(self, f"_recv_{kind}", None)
            if handler is None:
                raise TypeError(f"{self.name}: unhandled message {message!r}")
            self._recv_handlers[kind] = handler
        self.trace("rcv", message)
        handler(message)

    # --- move-related receipts -----------------------------------------
    def _recv_grow(self, message: Grow) -> None:
        """Grow receipt: adopt the sender as child; maybe schedule a grow.

        Per §IV-B.1 prose (and lookAhead): ``c`` is always updated; the
        grow is *done* if already on the path (``p ≠ ⊥`` or MAX),
        otherwise the grow timer is armed — but never re-armed, so a
        pending grow keeps its original deadline.
        """
        was_bottom = self.c is BOTTOM
        self.c = message.cid
        if was_bottom and self.p is BOTTOM and self.lvl != self.max_level:
            self.timer.arm(self.now + self.schedule.g(self.lvl))

    def _recv_growpar(self, message: GrowPar) -> None:
        self.nbrptup = message.cid

    def _recv_grownbr(self, message: GrowNbr) -> None:
        self.nbrptdown = message.cid

    def _recv_shrink(self, message: Shrink) -> None:
        """Shrink receipt: drop deadwood child; maybe schedule a shrink.

        Only a ``c`` still pointing at the sender is cleared (a newer
        grow may have repointed it); the shrink timer is armed only when
        ``p ≠ ⊥`` (DESIGN.md §3.2).
        """
        if self.c == message.cid:
            self.c = BOTTOM
            if self.lvl != self.max_level and self.p is not BOTTOM:
                self.timer.arm(self.now + self.schedule.s(self.lvl))

    def _recv_shrinkupd(self, message: ShrinkUpd) -> None:
        if self.nbrptup == message.cid:
            self.nbrptup = BOTTOM
        if self.nbrptdown == message.cid:
            self.nbrptdown = BOTTOM

    # --- find-related receipts ------------------------------------------
    def _recv_find(self, message: Find) -> None:
        self.finding = True
        self.find_id = message.find_id
        self.nbrtimeout.disarm()  # nbrtimeout ← ∞

    def _recv_findquery(self, message: FindQuery) -> None:
        reply: Optional[ClusterId] = None
        if self.c is not BOTTOM:
            reply = self.c
        elif self.nbrptdown is not BOTTOM:
            reply = self.nbrptdown
        elif self.nbrptup is not BOTTOM:
            reply = self.nbrptup
        if reply is not None:
            self.findAckq.append(
                (message.cid, FindAck(pointer=reply, find_id=message.find_id))
            )

    def _recv_findack(self, message: FindAck) -> None:
        if (
            self.finding
            and message.pointer != self.clust
            and self.c is BOTTOM
            and self.nbrptdown is BOTTOM
            and self.nbrptup in (BOTTOM, self.p)
        ):
            self.sendq.append(
                (message.pointer, Find(cid=self.clust, find_id=message.find_id))
            )
            self.finding = False

    def _recv_found(self, message: Found) -> None:
        """A neighboring level-0 process announced found: relay to clients.

        Fig. 2 queues ``found`` to level-0 neighbors; §V says clients in
        that and neighboring regions receive it.  The neighbor process
        relays the announcement to its own region's clients.
        """
        if self.lvl == 0:
            self.cgcast.send_to_clients(self.clust, message)

    # ------------------------------------------------------------------
    # Locally controlled actions
    # ------------------------------------------------------------------
    def enabled_outputs(self) -> List[Action]:
        """Enabled outputs, in deterministic precedence order."""
        if self.sendq:
            return [_SENDQ_HEAD]
        if self.findAckq:
            return [_FINDACKQ_HEAD]
        if self.timer.expired():
            # Grow send: now = timer ∧ c ≠ ⊥ ∧ p = ⊥.
            if self.c is not BOTTOM and self.p is BOTTOM:
                return [_GROW_SEND]
            # Shrink send: now = timer ∧ c = ⊥ ∧ p ≠ ⊥.
            if self.c is BOTTOM and self.p is not BOTTOM:
                return [_SHRINK_SEND]
            # Timer fired but neither grow nor shrink is enabled (the
            # pointer it guarded was changed in flight): disarm lazily.
            self.timer.disarm()
        if self.finding:
            found_or_forward = self._find_progress_action()
            if found_or_forward is not None:
                return [found_or_forward]
        return []

    def _find_progress_action(self) -> Optional[Action]:
        """The enabled find-related action, if any (Fig. 2 find section)."""
        # found: finding ∧ c = clust.
        if self.c == self.clust:
            return _FOUND_SEND
        # find forward: tracing via c, or searching via pointers/timeout.
        dest = self._find_forward_dest()
        if dest is not None:
            return Action.output("find_forward", dest=dest)
        # findquery: c = nbrptdown = ⊥ ∧ nbrptup ∈ {⊥, p} ∧ no query outstanding.
        if (
            self.c is BOTTOM
            and self.nbrptdown is BOTTOM
            and self.nbrptup in (BOTTOM, self.p)
            and self.nbrtimeout.deadline > self.now + self._query_roundtrip()
        ):
            return _FINDQUERY
        return None

    def _find_forward_dest(self) -> Optional[ClusterId]:
        """Destination satisfying the Fig. 2 find-forward precondition."""
        if self.c not in (BOTTOM, self.clust):
            return self.c  # tracing
        if self.c is BOTTOM and self.nbrptdown is not BOTTOM:
            return self.nbrptdown
        if self.c is BOTTOM and self.nbrptdown is BOTTOM:
            if self.nbrptup is not BOTTOM and self.nbrptup != self.p:
                return self.nbrptup
            if self.nbrtimeout.armed and self.nbrtimeout.deadline <= self.now:
                if self.nbrptup is BOTTOM:
                    return self.parent_cluster  # None at MAX: no forward
                return self.nbrptup
        return None

    def _query_roundtrip(self) -> float:
        """Roundtrip neighbor communication time: ``2(δ+e)n(lvl)``."""
        return 2 * (self.delta + self.e) * self.hierarchy.params.n(self.lvl)

    # --- output effects ---------------------------------------------------
    def output_sendq_head(self) -> None:
        dest, message = self.sendq.pop(0)
        self._send(dest, message)

    def output_findAckq_head(self) -> None:
        dest, message = self.findAckq.pop(0)
        self._send(dest, message)

    def output_grow_send(self) -> None:
        """cTOBsend(⟨grow, clust⟩, par): join the path and extend it."""
        self.timer.disarm()
        if self.nbrptup is not BOTTOM:
            par = self.nbrptup
            lateral = True
        else:
            par = self.parent_cluster
            lateral = False
        assert par is not None, "grow timer armed at MAX level"
        self.p = par
        self._send(par, Grow(cid=self.clust))
        update = GrowNbr(cid=self.clust) if lateral else GrowPar(cid=self.clust)
        self._queue_to_nbrs(update)
        self.trace("grow-sent", (par, "lateral" if lateral else "vertical"))
        if _OBS.events_enabled:
            _OBS.emit(GrowSent(self.now, self.clust, self.lvl, par, lateral))

    def output_shrink_send(self) -> None:
        """cTOBsend(⟨shrink, clust⟩, p): leave the path, clean secondaries."""
        self.timer.disarm()
        par = self.p
        self.p = BOTTOM
        self._send(par, Shrink(cid=self.clust))
        self._queue_to_nbrs(ShrinkUpd(cid=self.clust))
        self.trace("shrink-sent", par)
        if _OBS.events_enabled:
            _OBS.emit(ShrinkSent(self.now, self.clust, self.lvl, par))

    def output_found_send(self) -> None:
        """cTOBsend(⟨found, clust⟩, clust): announce at the evader's region."""
        found = Found(find_id=self.find_id)
        self.cgcast.send_to_clients(self.clust, found)
        for nbr in self.nbr_clusters:
            self.sendq.append((nbr, found))
        self.finding = False
        self.trace("found", self.find_id)
        if _OBS.events_enabled:
            _OBS.emit(FoundAnnounced(self.now, self.clust, self.find_id))

    def output_find_forward(self, dest: ClusterId) -> None:
        self.finding = False
        self._send(dest, Find(cid=self.clust, find_id=self.find_id))
        self.trace("find-forward", dest)
        if _OBS.events_enabled:
            _OBS.emit(FindForwarded(self.now, self.clust, self.lvl, dest))

    def internal_findquery(self) -> None:
        self.nbrtimeout.arm(self.now + self._query_roundtrip())
        query = FindQuery(cid=self.clust, find_id=self.find_id)
        self._queue_to_nbrs(query, exclude=self.p)
        self.trace("findquery", self.find_id)
        if _OBS.events_enabled:
            _OBS.emit(FindQueryIssued(self.now, self.clust, self.lvl, self.find_id))

    # ------------------------------------------------------------------
    # Introspection for verification tooling
    # ------------------------------------------------------------------
    def pointer_state(self) -> tuple:
        """``(c, p, nbrptup, nbrptdown)`` snapshot."""
        return (self.c, self.p, self.nbrptup, self.nbrptdown)
