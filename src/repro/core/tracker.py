"""The Tracker subautomaton ``Tracker_{u,lvl}`` (Fig. 2).

One Tracker runs per cluster, hosted at the VSA of the cluster's head
region.  Trackers jointly maintain the tracking path (child pointer
``c``, parent pointer ``p``, secondary pointers ``nbrptup`` /
``nbrptdown``) and service finds (two phases: search, trace).

The translation follows Fig. 2 statement by statement; the two places
where the printed figure and the prose of §IV-B disagree are resolved
in favour of the prose / ``lookAhead`` semantics — see DESIGN.md §3:

1. a received ``grow`` always updates ``c`` (the figure's guard would
   prevent the path junction from repointing);
2. the shrink timer is armed only when ``p ≠ ⊥`` (the figure arms it
   unconditionally below MAX, which could clobber a pending grow timer).

TIOA urgency ("stops when any precondition is satisfied") is realised
by the executor draining :meth:`enabled_outputs` after every input and
wakeup.

Multi-object lanes (DESIGN.md §9)
---------------------------------
One Tracker hosts one *lane* of Fig. 2 state per tracked object.  Lane
``0`` — the single evader of the original paper — lives directly in the
tracker's own attributes (``self.c``, ``self.timer``, ...), so the
single-object execution is bit-identical to the pre-service code.
Additional lanes are :class:`ObjectLane` records created on demand when
the first message for that ``object_id`` arrives.  Per-lane grow/shrink
and neighbor-timeout deadlines are *batched*: every extra lane's
:class:`LaneDeadline` rides one shared wheel :class:`Timer`, armed at
the minimum outstanding deadline, so a tracker schedules O(1) executor
wakeups regardless of how many objects route through it.  ``sendq`` and
``findAckq`` stay shared FIFOs (messages carry their ``object_id``), so
lateral-link maintenance traffic is batched across lanes too.

O(active) scheduling (DESIGN.md §9.5)
-------------------------------------
Neither :meth:`Tracker.enabled_outputs` nor the wheel ever scans all
lanes.  A *dirty set* holds the object ids that may have an enabled
action — a lane enters it when a message arrives for it or one of its
deadlines comes due, and leaves when :meth:`Tracker._lane_enabled`
returns nothing for it; iteration is in sorted object-id order, so the
action precedence (and with it every pinned fingerprint) is unchanged
from the full scan.  Deadlines live in a lazy min-heap of
``(deadline, object_id)`` entries pushed on every
:meth:`LaneDeadline.arm`; stale entries (the lane re-armed or disarmed
since the push) are dropped when popped.  Servicing the heap both
re-dirties lanes whose deadline has arrived — *before* the first
same-instant drain reads them, exactly when the full scan would have
seen ``expired()`` — and yields the minimum future deadline the wheel
re-arms at.  The invariant that makes the dirty set sound: a lane
outside it has no enabled action, and pure time passage can only
enable an action through a deadline, which is always in the heap.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Dict, List, Optional

from ..hierarchy.cluster import ClusterId
from ..hierarchy.hierarchy import ClusterHierarchy
from ..obs._state import OBS as _OBS
from ..obs.events import (
    FindForwarded,
    FindQueryIssued,
    FoundAnnounced,
    GrowSent,
    ShrinkSent,
)
from ..tioa.actions import Action
from ..tioa.automaton import TimedAutomaton
from ..tioa.timers import INFINITY, Timer
from .messages import (
    Find,
    FindAck,
    FindQuery,
    Found,
    Grow,
    GrowNbr,
    GrowPar,
    Shrink,
    ShrinkUpd,
    TrackerMessage,
)
from .timers import TimerSchedule

BOTTOM = None  # ⊥ of Fig. 2

# Payload-free actions are immutable; shared instances avoid rebuilding
# them inside enabled_outputs(), which runs after every discrete step.
_SENDQ_HEAD = Action.output("sendq_head")
_FINDACKQ_HEAD = Action.output("findAckq_head")
_GROW_SEND = Action.output("grow_send")
_SHRINK_SEND = Action.output("shrink_send")
_FOUND_SEND = Action.output("found_send")
_FINDQUERY = Action.internal("findquery")


class LaneDeadline:
    """A per-lane deadline riding its tracker's shared wheel timer.

    Duck-typed to the :class:`~repro.tioa.timers.Timer` surface the
    Fig. 2 logic reads (``deadline``/``armed``/``expired``/``arm``/
    ``disarm``) but owns no executor event: arming pushes a
    ``(deadline, object_id)`` entry onto the tracker's deadline heap
    and re-evaluates the wheel, which is the single real timer for all
    extra lanes.  Disarming leaves its heap entry behind as garbage;
    the heap drops it lazily (the lane's live deadline no longer
    matches the entry).
    """

    __slots__ = ("_tracker", "_object_id", "deadline")

    def __init__(self, tracker: "Tracker", object_id: int) -> None:
        self._tracker = tracker
        self._object_id = object_id
        self.deadline: float = INFINITY

    @property
    def armed(self) -> bool:
        return self.deadline != INFINITY

    def expired(self) -> bool:
        return self.deadline != INFINITY and self._tracker.now >= self.deadline

    def arm(self, deadline: float) -> None:
        tracker = self._tracker
        if deadline < tracker.now:
            raise ValueError(
                f"lane deadline {deadline} is in the past "
                f"(now={tracker.now})"
            )
        self.deadline = deadline
        heappush(tracker._deadline_heap, (deadline, self._object_id))
        tracker._rearm_wheel()

    def disarm(self) -> None:
        if self.deadline != INFINITY:
            self.deadline = INFINITY
            self._tracker._rearm_wheel()


class ObjectLane:
    """Fig. 2 per-object state for one extra tracked object (§9)."""

    __slots__ = (
        "object_id",
        "c",
        "p",
        "nbrptup",
        "nbrptdown",
        "finding",
        "find_id",
        "timer",
        "nbrtimeout",
        "ackptr",
        "timeout_due",
    )

    def __init__(self, object_id: int, tracker: "Tracker") -> None:
        self.object_id = object_id
        self.c: Optional[ClusterId] = BOTTOM
        self.p: Optional[ClusterId] = BOTTOM
        self.nbrptup: Optional[ClusterId] = BOTTOM
        self.nbrptdown: Optional[ClusterId] = BOTTOM
        self.finding = False
        self.find_id = 0
        self.timer = LaneDeadline(tracker, object_id)
        self.nbrtimeout = LaneDeadline(tracker, object_id)
        # Deterministic ack arbitration (extra lanes only): qualifying
        # FindAck pointers are *recorded* here — canonical minimum, not
        # first-arrival — and acted on once, at the wheel wakeup after
        # every same-instant delivery.  Arrival order of simultaneous
        # acks (which a partitioned run cannot reproduce) then never
        # affects the forward destination.
        self.ackptr: Optional[ClusterId] = None
        self.timeout_due = False


class Tracker(TimedAutomaton):
    """Cluster process ``clust = cluster(u, lvl)`` with ``h(clust) = u``.

    Args:
        hierarchy: The cluster hierarchy.
        clust: This process's cluster.
        cgcast: C-gcast service for ``cTOBsend``/``cTOBrcv``.
        schedule: Grow/shrink timer schedule satisfying Eq. (1).
        delta: Broadcast delay ``δ`` (for the find neighbor timeout).
        e: Emulation lag ``e`` (same).
    """

    #: Lane-0 object id; also makes ``self`` usable wherever an
    #: :class:`ObjectLane` is expected.
    object_id = 0
    #: Class-level fallbacks so trackers pickled before multi-object
    #: lanes existed unpickle into working single-lane trackers
    #: (``__setstate__`` rebuilds the lane bookkeeping either way).
    _lanes: Optional[Dict[int, ObjectLane]] = None
    _lane_wheel: Optional[Timer] = None
    _dirty = None
    _deadline_heap = None
    _timeout_pending = None

    def __init__(
        self,
        hierarchy: ClusterHierarchy,
        clust: ClusterId,
        cgcast,
        schedule: TimerSchedule,
        delta: float,
        e: float,
    ) -> None:
        super().__init__(f"tracker:{clust.level}:{clust.key}")
        self.hierarchy = hierarchy
        self.clust = clust
        self.lvl = clust.level
        self.cgcast = cgcast
        self.schedule = schedule
        self.delta = delta
        self.e = e
        self.max_level = hierarchy.max_level
        # Static cluster environment (deterministic order).
        self.nbr_clusters: List[ClusterId] = hierarchy.nbrs(clust)
        self.parent_cluster: Optional[ClusterId] = hierarchy.parent(clust)

        # --- Fig. 2 state variables (lane 0) ---------------------------
        self.c: Optional[ClusterId] = BOTTOM
        self.p: Optional[ClusterId] = BOTTOM
        self.nbrptup: Optional[ClusterId] = BOTTOM
        self.nbrptdown: Optional[ClusterId] = BOTTOM
        self.sendq: List[tuple] = []  # (dest, TrackerMessage), FIFO
        self.timer = Timer(self, "timer")
        # --- find-related state (lane 0) -------------------------------
        self.nbrtimeout = Timer(self, "nbrtimeout")
        self.findAckq: List[tuple] = []  # (dest, FindAck)
        self.finding = False
        self.find_id = 0  # bookkeeping tag of the find in service
        self._recv_handlers: dict = {}  # message kind → bound _recv_* method
        # --- extra object lanes (created on demand) --------------------
        self._lanes = {}
        self._lane_wheel = None
        # O(active) scheduling state (module docstring): object ids that
        # may have an enabled action, the lazy (deadline, object_id)
        # min-heap, and lanes whose find roundtrip ended but whose
        # ``timeout_due`` flag awaits the next wheel wakeup.
        self._dirty: set = set()
        self._deadline_heap: list = []
        self._timeout_pending: set = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset_state(self) -> None:
        self.c = BOTTOM
        self.p = BOTTOM
        self.nbrptup = BOTTOM
        self.nbrptdown = BOTTOM
        self.sendq = []
        self.timer.disarm()
        self.nbrtimeout.disarm()
        self.findAckq = []
        self.finding = False
        self.find_id = 0
        if self._lanes:
            self._lanes.clear()
        self._dirty = set()
        self._deadline_heap = []
        self._timeout_pending = set()
        wheel = self._lane_wheel
        if wheel is not None:
            wheel.disarm()

    def on_failed(self) -> None:
        self.timer.disarm()
        self.nbrtimeout.disarm()
        wheel = self._lane_wheel
        if wheel is not None:
            wheel.disarm()

    def on_wakeup(self, tag=None) -> None:
        if tag != "lane-wheel":
            return
        # Collect any deadlines that came due at this instant, then mark
        # every pending lane whose find roundtrip is over: the drain
        # that follows forwards each one to its best recorded ack
        # pointer or escalates.  The flag (rather than reading the
        # deadline in enabled_outputs) keeps the decision at this single
        # point — after all same-instant deliveries, per the wheel's
        # priority.  ``_timeout_pending`` is filled by the heap exactly
        # once per armed roundtrip and re-checked here against the live
        # lane state, so a wheel re-armed past a due instant (unrelated
        # lane activity) still flags the lane at its next wakeup — the
        # same late outcome the full sweep produced.
        self._service_heap()
        pending = self._timeout_pending
        if pending:
            lanes = self._lanes
            dirty = self._dirty
            now = self.now
            for oid in sorted(pending):
                lane = lanes.get(oid) if lanes else None
                if (
                    lane is not None
                    and lane.finding
                    and lane.nbrtimeout.deadline <= now  # armed: != INFINITY
                ):
                    lane.timeout_due = True
                    dirty.add(oid)
            pending.clear()
        # Hand the wheel on to the next future deadline: a drain whose
        # effects touch no LaneDeadline (a lone find escalation, say)
        # would otherwise leave the wheel dead with live deadlines
        # pending.
        self._rearm_wheel()

    def __setstate__(self, state) -> None:
        """Restore a pickled tracker, rebuilding the lane bookkeeping.

        The dirty set and deadline heap are derived state: rebuilding
        them conservatively (every lane dirty, one heap entry per armed
        deadline) is cheap and makes snapshots from before the O(active)
        scheduler — whose lanes also predate ``LaneDeadline._object_id``
        — restore into working trackers.  A conservatively dirty lane
        with no enabled action is dropped by the first drain without
        emitting anything, so resumed traces stay bit-identical.
        """
        if isinstance(state, tuple):  # (dict, slots) protocol-2 shape
            mapping, slots = state
            if mapping:
                self.__dict__.update(mapping)
            if slots:
                for key, value in slots.items():
                    setattr(self, key, value)
        else:
            self.__dict__.update(state)
        self._rebuild_lane_index()

    def _rebuild_lane_index(self) -> None:
        lanes = self._lanes
        # ``_timeout_pending`` need not be preserved across a snapshot:
        # a pending lane's nbrtimeout is still armed at its (now past)
        # deadline, so the rebuilt heap re-pends it at the next service.
        self._timeout_pending = set()
        if not lanes:
            self._dirty = set()
            self._deadline_heap = []
            return
        self._dirty = set(lanes)
        heap = []
        for oid, lane in lanes.items():
            for deadline_obj in (lane.timer, lane.nbrtimeout):
                deadline_obj._object_id = oid  # heal pre-§9.5 pickles
                if deadline_obj.deadline != INFINITY:
                    heap.append((deadline_obj.deadline, oid))
        heapify(heap)
        self._deadline_heap = heap

    # ------------------------------------------------------------------
    # Object lanes
    # ------------------------------------------------------------------
    def lane(self, object_id: int):
        """The lane for ``object_id`` (``self`` for lane 0), creating it."""
        if object_id == 0:
            return self
        lanes = self._lanes
        if lanes is None:
            lanes = {}
            self._lanes = lanes
        lane = lanes.get(object_id)
        if lane is None:
            lane = ObjectLane(object_id, self)
            lanes[object_id] = lane
        return lane

    def object_ids(self) -> tuple:
        """Object ids with lane state at this tracker (lane 0 always)."""
        lanes = self._lanes
        if not lanes:
            return (0,)
        return (0,) + tuple(sorted(lanes))

    def _service_heap(self) -> float:
        """Pop due/stale deadline-heap entries; return the next live one.

        An entry is *live* when the lane's current grow/shrink or
        neighbor-timeout deadline still equals the pushed value (a
        re-arm pushes a fresh entry; a disarm or re-arm strands the old
        one).  A live entry that has come due dirties its lane — that
        is the moment the full scan would first have seen ``expired()``
        or an actionable timeout — and, when it is the find roundtrip
        that ended, queues the lane for ``timeout_due`` flagging at the
        next wheel wakeup.  Returns the minimum *future* live deadline
        (``INFINITY`` when none), leaving that entry in the heap.
        """
        heap = self._deadline_heap
        if not heap:
            return INFINITY
        lanes = self._lanes
        dirty = self._dirty
        pending = self._timeout_pending
        now = self.now
        while heap:
            d, oid = heap[0]
            lane = lanes.get(oid) if lanes else None
            if lane is None:
                heappop(heap)
                continue
            timer_live = lane.timer.deadline == d
            nbr_live = lane.nbrtimeout.deadline == d
            if not (timer_live or nbr_live):
                heappop(heap)  # stale: superseded by a later push
                continue
            if d > now:
                return d
            heappop(heap)
            dirty.add(oid)
            if nbr_live:
                pending.add(oid)
        return INFINITY

    def _rearm_wheel(self) -> None:
        """Re-arm the shared wheel at the minimum *future* lane deadline.

        Deadlines at or before ``now`` never need a wakeup: a deadline
        due this instant is handled by the drain already in progress
        (every ``_rearm_wheel`` call site runs inside input processing
        or an output effect, both followed by a drain — and servicing
        the heap just re-dirtied its lane), and a deadline left armed
        in the past is unactionable by pure time passage (e.g.
        ``output_find_forward`` clears ``finding`` but per Fig. 2
        leaves ``nbrtimeout`` set).  Arming at such values would spin
        the wheel on no-op wakeups.
        """
        nxt = self._service_heap()
        wheel = self._lane_wheel
        if nxt == INFINITY:
            if wheel is not None:
                wheel.disarm()
            return
        if wheel is None:
            # priority=1: re-arming gives the wheel a fresh event-queue
            # sequence number, so on a deadline/message-delivery tie its
            # heap position would depend on *when* unrelated lane
            # activity last re-armed it — an order a partitioned run
            # cannot reproduce.  Such ties are structural, not rare: the
            # find timeout is armed at exactly the worst-case query
            # roundtrip 2(δ+e)n, which with deterministic delays is the
            # very instant the FindAcks land.  Firing *after* every
            # same-instant delivery is the one re-arm-invariant (hence
            # K-invariant) order, and it lets the wakeup arbitrate the
            # roundtrip with the complete ack set in hand (see
            # ``ObjectLane.ackptr``).
            wheel = Timer(self, "lane-wheel", priority=1)
            self._lane_wheel = wheel
        wheel.arm(nxt)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _send(self, dest: ClusterId, message: TrackerMessage) -> None:
        self.cgcast.send_vsa(self.clust, dest, message)

    def _queue_to_nbrs(self, message: TrackerMessage, exclude=None) -> None:
        for nbr in self.nbr_clusters:
            if exclude is not None and nbr == exclude:
                continue
            self.sendq.append((nbr, message))

    @property
    def on_path(self) -> bool:
        """On the tracking path: has a parent pointer or is the root."""
        return self.p is not BOTTOM or self.lvl == self.max_level

    # ------------------------------------------------------------------
    # Input: cTOBrcv — dispatch on message type
    # ------------------------------------------------------------------
    def input_cTOBrcv(self, message: TrackerMessage) -> None:
        kind = message.kind
        handler = self._recv_handlers.get(kind)
        if handler is None:
            handler = getattr(self, f"_recv_{kind}", None)
            if handler is None:
                raise TypeError(f"{self.name}: unhandled message {message!r}")
            self._recv_handlers[kind] = handler
        self.trace("rcv", message)
        # getattr: extension message types (e.g. heartbeats) may not
        # carry an object_id; they belong to lane 0.
        object_id = getattr(message, "object_id", 0)
        if object_id == 0:
            handler(message, self)
        else:
            handler(message, self.lane(object_id))
            # The receipt may have enabled a lane action; the following
            # drain scans dirty lanes only.
            self._dirty.add(object_id)

    # --- move-related receipts -----------------------------------------
    def _recv_grow(self, message: Grow, lane) -> None:
        """Grow receipt: adopt the sender as child; maybe schedule a grow.

        Per §IV-B.1 prose (and lookAhead): ``c`` is always updated; the
        grow is *done* if already on the path (``p ≠ ⊥`` or MAX),
        otherwise the grow timer is armed — but never re-armed, so a
        pending grow keeps its original deadline.
        """
        was_bottom = lane.c is BOTTOM
        lane.c = message.cid
        if was_bottom and lane.p is BOTTOM and self.lvl != self.max_level:
            lane.timer.arm(self.now + self.schedule.g(self.lvl))

    def _recv_growpar(self, message: GrowPar, lane) -> None:
        lane.nbrptup = message.cid

    def _recv_grownbr(self, message: GrowNbr, lane) -> None:
        lane.nbrptdown = message.cid

    def _recv_shrink(self, message: Shrink, lane) -> None:
        """Shrink receipt: drop deadwood child; maybe schedule a shrink.

        Only a ``c`` still pointing at the sender is cleared (a newer
        grow may have repointed it); the shrink timer is armed only when
        ``p ≠ ⊥`` (DESIGN.md §3.2).
        """
        if lane.c == message.cid:
            lane.c = BOTTOM
            if self.lvl != self.max_level and lane.p is not BOTTOM:
                lane.timer.arm(self.now + self.schedule.s(self.lvl))

    def _recv_shrinkupd(self, message: ShrinkUpd, lane) -> None:
        if lane.nbrptup == message.cid:
            lane.nbrptup = BOTTOM
        if lane.nbrptdown == message.cid:
            lane.nbrptdown = BOTTOM

    # --- find-related receipts ------------------------------------------
    def _recv_find(self, message: Find, lane) -> None:
        lane.finding = True
        lane.find_id = message.find_id
        lane.nbrtimeout.disarm()  # nbrtimeout ← ∞
        if lane is not self:
            lane.ackptr = None
            lane.timeout_due = False

    def _recv_findquery(self, message: FindQuery, lane) -> None:
        reply: Optional[ClusterId] = None
        if lane.c is not BOTTOM:
            reply = lane.c
        elif lane.nbrptdown is not BOTTOM:
            reply = lane.nbrptdown
        elif lane.nbrptup is not BOTTOM:
            reply = lane.nbrptup
        if reply is not None:
            self.findAckq.append(
                (
                    message.cid,
                    FindAck(
                        pointer=reply,
                        find_id=message.find_id,
                        object_id=message.object_id,
                    ),
                )
            )

    def _recv_findack(self, message: FindAck, lane) -> None:
        if not (
            lane.finding
            and message.pointer != self.clust
            and lane.c is BOTTOM
            and lane.nbrptdown is BOTTOM
            and lane.nbrptup in (BOTTOM, lane.p)
        ):
            return
        if lane is not self:
            # Extra lanes: with deterministic delays the acks of one
            # query land at the very instant nbrtimeout expires, and
            # acks of a superseded query may land mid-find — both are
            # arrival-order races a partitioned run cannot reproduce.
            # Record the canonically smallest fresh pointer instead;
            # the wheel wakeup (after all same-instant deliveries)
            # forwards to it, or escalates when no ack qualified.
            if message.find_id != lane.find_id:
                return
            if lane.ackptr is None or str(message.pointer) < str(lane.ackptr):
                lane.ackptr = message.pointer
            return
        self.sendq.append(
            (
                message.pointer,
                Find(
                    cid=self.clust,
                    find_id=message.find_id,
                    object_id=message.object_id,
                ),
            )
        )
        lane.finding = False

    def _recv_found(self, message: Found, lane) -> None:
        """A neighboring level-0 process announced found: relay to clients.

        Fig. 2 queues ``found`` to level-0 neighbors; §V says clients in
        that and neighboring regions receive it.  The neighbor process
        relays the announcement to its own region's clients.
        """
        if self.lvl == 0:
            self.cgcast.send_to_clients(self.clust, message)

    # ------------------------------------------------------------------
    # Locally controlled actions
    # ------------------------------------------------------------------
    def enabled_outputs(self) -> List[Action]:
        """Enabled outputs, in deterministic precedence order.

        Shared FIFOs first (they batch traffic for every lane), then
        lane 0 — exactly the pre-service order, so single-object runs
        are bit-identical — then *dirty* extra lanes in ascending
        object id.  Promoting due heap entries first keeps a deadline
        that expires this instant visible to every same-instant drain
        (priority-0 deliveries run before the wheel's priority-1
        wakeup), exactly as the full scan saw ``expired()``; the
        dirty-set invariant (quiesced lanes have no enabled action)
        then makes the dirty order and the full-scan order agree on
        the first enabled lane.  Cost: O(dirty · log dirty), not O(M).
        """
        if self.sendq:
            return [_SENDQ_HEAD]
        if self.findAckq:
            return [_FINDACKQ_HEAD]
        action = self._lane_enabled(self)
        if action is not None:
            return [action]
        heap = self._deadline_heap
        if heap and heap[0][0] <= self.now:
            self._service_heap()
        dirty = self._dirty
        if dirty:
            lanes = self._lanes
            for object_id in sorted(dirty):
                action = self._lane_enabled(lanes[object_id])
                if action is not None:
                    return [action]
                dirty.discard(object_id)  # quiesced until re-touched
        return []

    def _enabled_outputs_fullscan(self) -> List[Action]:
        """Reference implementation scanning *every* lane (pre-§9.5).

        Kept as the oracle for the dirty-set equivalence property test:
        same precedence, O(M) per call.  Not used on the hot path.
        """
        if self.sendq:
            return [_SENDQ_HEAD]
        if self.findAckq:
            return [_FINDACKQ_HEAD]
        action = self._lane_enabled(self)
        if action is not None:
            return [action]
        heap = self._deadline_heap
        if heap and heap[0][0] <= self.now:
            self._service_heap()  # keep _timeout_pending fed for the wheel
        lanes = self._lanes
        if lanes:
            for object_id in sorted(lanes):
                action = self._lane_enabled(lanes[object_id])
                if action is not None:
                    return [action]
        return []

    def _lane_enabled(self, lane) -> Optional[Action]:
        """The enabled lane-local action, if any (Fig. 2, one lane)."""
        if lane.timer.expired():
            # Grow send: now = timer ∧ c ≠ ⊥ ∧ p = ⊥.
            if lane.c is not BOTTOM and lane.p is BOTTOM:
                if lane is self:
                    return _GROW_SEND
                return Action.output("grow_send", object_id=lane.object_id)
            # Shrink send: now = timer ∧ c = ⊥ ∧ p ≠ ⊥.
            if lane.c is BOTTOM and lane.p is not BOTTOM:
                if lane is self:
                    return _SHRINK_SEND
                return Action.output("shrink_send", object_id=lane.object_id)
            # Timer fired but neither grow nor shrink is enabled (the
            # pointer it guarded was changed in flight): disarm lazily.
            lane.timer.disarm()
        if lane.finding:
            return self._find_progress_action(lane)
        return None

    def _find_progress_action(self, lane) -> Optional[Action]:
        """The enabled find-related action, if any (Fig. 2 find section)."""
        # found: finding ∧ c = clust.
        if lane.c == self.clust:
            if lane is self:
                return _FOUND_SEND
            return Action.output("found_send", object_id=lane.object_id)
        # find forward: tracing via c, or searching via pointers/timeout.
        dest = self._find_forward_dest(lane)
        if dest is not None:
            if lane is self:
                return Action.output("find_forward", dest=dest)
            return Action.output(
                "find_forward", dest=dest, object_id=lane.object_id
            )
        # findquery: c = nbrptdown = ⊥ ∧ nbrptup ∈ {⊥, p} ∧ no query outstanding.
        if (
            lane.c is BOTTOM
            and lane.nbrptdown is BOTTOM
            and lane.nbrptup in (BOTTOM, lane.p)
            and lane.nbrtimeout.deadline > self.now + self._query_roundtrip()
        ):
            if lane is self:
                return _FINDQUERY
            return Action.internal("findquery", object_id=lane.object_id)
        return None

    def _find_forward_dest(self, lane) -> Optional[ClusterId]:
        """Destination satisfying the Fig. 2 find-forward precondition."""
        if lane.c not in (BOTTOM, self.clust):
            return lane.c  # tracing
        if lane.c is BOTTOM and lane.nbrptdown is not BOTTOM:
            return lane.nbrptdown
        if lane.c is BOTTOM and lane.nbrptdown is BOTTOM:
            if lane.nbrptup is not BOTTOM and lane.nbrptup != lane.p:
                return lane.nbrptup
            if lane is not self:
                # Extra lanes decide exactly once, when the wheel has
                # marked the roundtrip over: best recorded ack pointer,
                # else escalate (mirrors the lane-0 tie outcome below —
                # its timeout event also precedes same-instant acks).
                if not lane.timeout_due:
                    return None
                if lane.ackptr is not None and lane.ackptr != self.clust:
                    return lane.ackptr
            if lane.nbrtimeout.armed and lane.nbrtimeout.deadline <= self.now:
                if lane.nbrptup is BOTTOM:
                    return self.parent_cluster  # None at MAX: no forward
                return lane.nbrptup
        return None

    def _query_roundtrip(self) -> float:
        """Roundtrip neighbor communication time: ``2(δ+e)n(lvl)``."""
        return 2 * (self.delta + self.e) * self.hierarchy.params.n(self.lvl)

    # --- output effects ---------------------------------------------------
    def output_sendq_head(self) -> None:
        dest, message = self.sendq.pop(0)
        self._send(dest, message)

    def output_findAckq_head(self) -> None:
        dest, message = self.findAckq.pop(0)
        self._send(dest, message)

    def output_grow_send(self, object_id: int = 0) -> None:
        """cTOBsend(⟨grow, clust⟩, par): join the path and extend it."""
        lane = self.lane(object_id)
        lane.timer.disarm()
        if lane.nbrptup is not BOTTOM:
            par = lane.nbrptup
            lateral = True
        else:
            par = self.parent_cluster
            lateral = False
        assert par is not None, "grow timer armed at MAX level"
        lane.p = par
        self._send(par, Grow(cid=self.clust, object_id=object_id))
        update = (
            GrowNbr(cid=self.clust, object_id=object_id)
            if lateral
            else GrowPar(cid=self.clust, object_id=object_id)
        )
        self._queue_to_nbrs(update)
        # Lane 0 keeps the exact legacy detail shape (bit-identity);
        # extra lanes append their object id so per-object monitors can
        # attribute lateral sends.
        mode = "lateral" if lateral else "vertical"
        detail = (par, mode) if object_id == 0 else (par, mode, object_id)
        self.trace("grow-sent", detail)
        if _OBS.events_enabled:
            _OBS.emit(
                GrowSent(
                    self.now, self.clust, self.lvl, par, lateral,
                    object_id=object_id,
                )
            )

    def output_shrink_send(self, object_id: int = 0) -> None:
        """cTOBsend(⟨shrink, clust⟩, p): leave the path, clean secondaries."""
        lane = self.lane(object_id)
        lane.timer.disarm()
        par = lane.p
        lane.p = BOTTOM
        self._send(par, Shrink(cid=self.clust, object_id=object_id))
        self._queue_to_nbrs(ShrinkUpd(cid=self.clust, object_id=object_id))
        self.trace("shrink-sent", par)
        if _OBS.events_enabled:
            _OBS.emit(
                ShrinkSent(self.now, self.clust, self.lvl, par, object_id=object_id)
            )

    def output_found_send(self, object_id: int = 0) -> None:
        """cTOBsend(⟨found, clust⟩, clust): announce at the evader's region."""
        lane = self.lane(object_id)
        found = Found(find_id=lane.find_id, object_id=object_id)
        self.cgcast.send_to_clients(self.clust, found)
        for nbr in self.nbr_clusters:
            self.sendq.append((nbr, found))
        lane.finding = False
        self.trace("found", lane.find_id)
        if _OBS.events_enabled:
            _OBS.emit(
                FoundAnnounced(self.now, self.clust, lane.find_id, object_id=object_id)
            )

    def output_find_forward(self, dest: ClusterId, object_id: int = 0) -> None:
        lane = self.lane(object_id)
        lane.finding = False
        self._send(dest, Find(cid=self.clust, find_id=lane.find_id, object_id=object_id))
        self.trace("find-forward", dest)
        if _OBS.events_enabled:
            _OBS.emit(
                FindForwarded(self.now, self.clust, self.lvl, dest, object_id=object_id)
            )

    def internal_findquery(self, object_id: int = 0) -> None:
        lane = self.lane(object_id)
        lane.nbrtimeout.arm(self.now + self._query_roundtrip())
        query = FindQuery(cid=self.clust, find_id=lane.find_id, object_id=object_id)
        self._queue_to_nbrs(query, exclude=lane.p)
        self.trace("findquery", lane.find_id)
        if _OBS.events_enabled:
            _OBS.emit(
                FindQueryIssued(
                    self.now, self.clust, self.lvl, lane.find_id,
                    object_id=object_id,
                )
            )

    # ------------------------------------------------------------------
    # Introspection for verification tooling
    # ------------------------------------------------------------------
    def pointer_state(self, object_id: int = 0) -> tuple:
        """``(c, p, nbrptup, nbrptdown)`` snapshot for one lane."""
        if object_id == 0:
            return (self.c, self.p, self.nbrptup, self.nbrptdown)
        lanes = self._lanes
        lane = lanes.get(object_id) if lanes else None
        if lane is None:
            return (BOTTOM, BOTTOM, BOTTOM, BOTTOM)
        return (lane.c, lane.p, lane.nbrptup, lane.nbrptdown)
