"""Runtime invariant monitors for Lemmas 4.1 and 4.2.

* **Lemma 4.1** — at any time, (cluster-originated grow messages in
  transit) + (processes with ``c ≠ ⊥ ∧ p = ⊥`` below MAX) ≤ 1, and the
  analogous bound for shrinks (``c = ⊥ ∧ p ≠ ⊥``).
* **Lemma 4.2** — a grow is sent laterally at most once per level per
  move.

The monitor recomputes the counts after every simulation event (via the
trace subscription) and records the maxima and any violations; the
test-suite asserts on them and benchmark E3 reports them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..hierarchy.cluster import ClusterId
from .messages import Grow, Shrink


class InvariantMonitor:
    """Continuously checks Lemma 4.1/4.2 on a running VINESTALK system.

    In a multi-object deployment every tracking lane is an independent
    instance of the lemmas; ``object_id`` selects which lane this
    monitor counts (messages and pointers of other lanes are ignored).
    """

    def __init__(self, system, object_id: int = 0) -> None:
        self.system = system
        self.object_id = object_id
        self.max_grow_outstanding = 0
        self.max_shrink_outstanding = 0
        self.violations: List[str] = []
        # Lemma 4.2: (move epoch, level) -> lateral grow count.
        self._lateral_counts: Dict[Tuple[int, int], int] = {}
        self._epoch = 0
        self._watching = False
        self._observed_evader = None

    # ------------------------------------------------------------------
    # Counting (Lemma 4.1)
    # ------------------------------------------------------------------
    def _lane_pointers(self, tracker) -> Tuple:
        return tracker.pointer_state(self.object_id)

    def grow_outstanding(self) -> int:
        """Cluster grow messages in transit + pending-grow processes."""
        object_id = self.object_id
        in_transit = sum(
            1
            for src, _dest, payload, _t in self.system.cgcast.in_transit()
            if isinstance(payload, Grow)
            and isinstance(src, ClusterId)
            and getattr(payload, "object_id", 0) == object_id
        )
        max_level = self.system.hierarchy.max_level
        pending = 0
        for tracker in self.system.trackers.values():
            c, p, _up, _down = self._lane_pointers(tracker)
            if c is not None and p is None and tracker.lvl != max_level:
                pending += 1
        return in_transit + pending

    def shrink_outstanding(self) -> int:
        """Cluster shrink messages in transit + pending-shrink processes."""
        object_id = self.object_id
        in_transit = sum(
            1
            for src, _dest, payload, _t in self.system.cgcast.in_transit()
            if isinstance(payload, Shrink)
            and isinstance(src, ClusterId)
            and getattr(payload, "object_id", 0) == object_id
        )
        max_level = self.system.hierarchy.max_level
        pending = 0
        for tracker in self.system.trackers.values():
            c, p, _up, _down = self._lane_pointers(tracker)
            if c is None and p is not None and tracker.lvl != max_level:
                pending += 1
        return in_transit + pending

    # ------------------------------------------------------------------
    # Watching
    # ------------------------------------------------------------------
    def watch(self) -> "InvariantMonitor":
        """Subscribe to the trace and sample after every record."""
        if self._watching:
            return self
        self._watching = True
        self.system.sim.trace.subscribe(self._on_record)
        finder = getattr(self.system, "object_evader", None)
        evader = (
            finder(self.object_id) if finder is not None else self.system.evader
        )
        if evader is not None:
            evader.observe(self._on_evader)
            self._observed_evader = evader
        return self

    def stop(self) -> None:
        """Detach from the trace and evader.

        Guaranteed inverse of :meth:`watch` — idempotent, safe before
        :meth:`watch`, and required so monitors never leak trace
        subscribers across back-to-back :class:`SweepRunner` jobs.
        """
        if not self._watching:
            return
        self._watching = False
        self.system.sim.trace.unsubscribe(self._on_record)
        if self._observed_evader is not None:
            self._observed_evader.unobserve(self._on_evader)
            self._observed_evader = None

    def _on_evader(self, event: str, region) -> None:
        if event == "move":
            self._epoch += 1

    def _on_record(self, record) -> None:
        if record.kind == "grow-sent":
            # Lane 0 records are (par, mode); extra lanes append their
            # object id as a third element.
            detail = record.detail
            mode = detail[1]
            record_object = detail[2] if len(detail) > 2 else 0
            if record_object != self.object_id:
                mode = None
            if mode == "lateral":
                level = int(record.source.split(":")[1])
                key = (self._epoch, level)
                self._lateral_counts[key] = self._lateral_counts.get(key, 0) + 1
                if self._lateral_counts[key] > 1:
                    self.violations.append(
                        f"Lemma 4.2 violated at t={record.time}: "
                        f"level {level} sent {self._lateral_counts[key]} lateral "
                        f"grows in move epoch {self._epoch}"
                    )
        if record.kind in ("send", "rcv", "grow-sent", "shrink-sent", "input"):
            self.sample(record.time)

    def sample(self, time: Optional[float] = None) -> None:
        """Take one sample of the Lemma 4.1 quantities."""
        if time is None:
            time = self.system.sim.now
        grow = self.grow_outstanding()
        shrink = self.shrink_outstanding()
        self.max_grow_outstanding = max(self.max_grow_outstanding, grow)
        self.max_shrink_outstanding = max(self.max_shrink_outstanding, shrink)
        if grow > 1:
            self.violations.append(
                f"Lemma 4.1 violated at t={time}: {grow} grows outstanding"
            )
        if shrink > 1:
            self.violations.append(
                f"Lemma 4.1 violated at t={time}: {shrink} shrinks outstanding"
            )

    def lateral_sends_total(self) -> int:
        return sum(self._lateral_counts.values())

    def assert_clean(self) -> None:
        """Raise if any invariant was violated."""
        if self.violations:
            raise AssertionError(
                f"{len(self.violations)} invariant violations; first: "
                f"{self.violations[0]}"
            )
