"""The ``lookAhead`` function (Fig. 3).

``lookAhead`` maps a mid-execution system state to its "future state":
the state reached once all outstanding grow-related updates are applied,
followed by the shrink-related ones.  Theorem 4.8 states that after any
execution with move sequence ``{c_0, …, c_x}``,
``lookAhead(state) = atomicMoveSeq({c_0, …, c_x})`` — the property our
model-equivalence tests and benchmark E5 check continuously.

The translation follows Fig. 3 line by line, with two operational
clarifications (DESIGN.md):

* the grow-propagation seed is the process with ``c ≠ ⊥ ∧ p = ⊥`` *below
  MAX* (the root always matches the raw predicate);
* message application consumes the snapshot's transit list in send
  order, which is how the figure's "for each … in transit" is realised
  deterministically.
"""

from __future__ import annotations

from ..hierarchy.hierarchy import ClusterHierarchy
from ..obs._state import OBS as _OBS
from ..obs.spans import Span
from .messages import Grow, GrowNbr, GrowPar, Shrink, ShrinkUpd
from .state import SystemSnapshot


class LookAheadError(RuntimeError):
    """The state violates a Fig. 3 single-update assumption in strict mode."""


def look_ahead(
    snapshot: SystemSnapshot,
    hierarchy: ClusterHierarchy,
    strict: bool = True,
) -> SystemSnapshot:
    """Fig. 3 on a snapshot; returns a new snapshot, input unchanged.

    Args:
        snapshot: State to project forward.
        hierarchy: The cluster hierarchy.
        strict: Enforce the atomic-case invariants (at most one pending
            grow and one pending shrink, Lemma 4.1); with ``strict=False``
            multiple pending updates are processed in deterministic
            (sorted) order — used for exploratory concurrent-state checks.
    """
    if _OBS.spans_enabled:
        with Span("core.look_ahead", "lookahead", _OBS.collector):
            return _look_ahead(snapshot, hierarchy, strict)
    return _look_ahead(snapshot, hierarchy, strict)


def _look_ahead(
    snapshot: SystemSnapshot,
    hierarchy: ClusterHierarchy,
    strict: bool,
) -> SystemSnapshot:
    state = snapshot.copy()
    ptr = state.pointers
    max_level = hierarchy.max_level

    # --- apply grow-family messages in transit -------------------------
    for msg in state.messages_of_kind(GrowNbr):
        ptr[msg.dest].nbrptdown = msg.payload.cid
    for msg in state.messages_of_kind(GrowPar):
        ptr[msg.dest].nbrptup = msg.payload.cid
    for msg in state.messages_of_kind(Grow):
        ptr[msg.dest].c = msg.payload.cid

    # --- propagate the pending grow ------------------------------------
    seeds = sorted(
        cid
        for cid, ps in ptr.items()
        if ps.c is not None and ps.p is None and cid.level != max_level
    )
    if strict and len(seeds) > 1:
        raise LookAheadError(f"multiple pending grows: {seeds}")
    for clust in seeds:
        while ptr[clust].p is None and clust.level != max_level:
            if ptr[clust].nbrptup is not None:
                ptr[clust].p = ptr[clust].nbrptup
                for nbr in hierarchy.nbrs(clust):
                    ptr[nbr].nbrptdown = clust
            else:
                ptr[clust].p = hierarchy.parent(clust)
                for nbr in hierarchy.nbrs(clust):
                    ptr[nbr].nbrptup = clust
            parent = ptr[clust].p
            ptr[parent].c = clust
            clust = parent

    # --- apply shrink-family messages in transit ------------------------
    for msg in state.messages_of_kind(ShrinkUpd):
        if ptr[msg.dest].nbrptup == msg.payload.cid:
            ptr[msg.dest].nbrptup = None
        if ptr[msg.dest].nbrptdown == msg.payload.cid:
            ptr[msg.dest].nbrptdown = None
    for msg in state.messages_of_kind(Shrink):
        if ptr[msg.dest].c == msg.payload.cid:
            ptr[msg.dest].c = None

    # --- propagate the pending shrink -----------------------------------
    shrink_seeds = sorted(
        cid for cid, ps in ptr.items() if ps.c is None and ps.p is not None
    )
    if strict and len(shrink_seeds) > 1:
        raise LookAheadError(f"multiple pending shrinks: {shrink_seeds}")
    for clust in shrink_seeds:
        if ptr[clust].c is not None:  # repaired by an earlier propagation
            continue
        while ptr[clust].p is not None and clust.level != max_level:
            for nbr in hierarchy.nbrs(clust):
                if ptr[nbr].nbrptup == clust:
                    ptr[nbr].nbrptup = None
                if ptr[nbr].nbrptdown == clust:
                    ptr[nbr].nbrptdown = None
            parent = ptr[clust].p
            if ptr[parent].c == clust:
                ptr[clust].p = None
                ptr[parent].c = None
                clust = parent
            else:
                ptr[clust].p = None

    state.in_transit = [
        m
        for m in state.in_transit
        if not isinstance(m.payload, (Grow, GrowNbr, GrowPar, Shrink, ShrinkUpd))
    ]
    return state
