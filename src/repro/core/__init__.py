"""VINESTALK core: Tracker, client algorithm, verification machinery (§III–§VI)."""

from .atomic_model import (
    AtomicModelError,
    atomic_move,
    atomic_move_seq,
    empty_state,
    init_state,
)
from .client_tracking import TrackingClient
from .consistency import check_consistent, is_consistent
from .emulated import EmulatedVineStalk
from .finds import FindCoordinator, FindRecord
from .invariants import InvariantMonitor
from .lookahead import LookAheadError, look_ahead
from .messages import (
    Find,
    FindAck,
    FindQuery,
    Found,
    Grow,
    GrowNbr,
    GrowPar,
    Shrink,
    ShrinkUpd,
    TrackerMessage,
    is_find_message,
    is_move_message,
)
from .path import (
    check_path_segment,
    check_tracking_path,
    extract_path,
    lateral_link_count,
    laterals_per_level_ok,
)
from .state import PointerState, SystemSnapshot, TransitMessage, capture_snapshot
from .timers import TimerSchedule, TimerScheduleError, grid_schedule, uniform_schedule
from .tracker import Tracker
from .vinestalk import VineStalk

__all__ = [
    "AtomicModelError",
    "EmulatedVineStalk",
    "Find",
    "FindAck",
    "FindCoordinator",
    "FindQuery",
    "FindRecord",
    "Found",
    "Grow",
    "GrowNbr",
    "GrowPar",
    "InvariantMonitor",
    "LookAheadError",
    "PointerState",
    "Shrink",
    "ShrinkUpd",
    "SystemSnapshot",
    "TimerSchedule",
    "TimerScheduleError",
    "Tracker",
    "TrackerMessage",
    "TrackingClient",
    "TransitMessage",
    "VineStalk",
    "atomic_move",
    "atomic_move_seq",
    "capture_snapshot",
    "check_consistent",
    "check_path_segment",
    "check_tracking_path",
    "empty_state",
    "extract_path",
    "grid_schedule",
    "init_state",
    "is_consistent",
    "is_find_message",
    "is_move_message",
    "lateral_link_count",
    "laterals_per_level_ok",
    "look_ahead",
    "uniform_schedule",
]
