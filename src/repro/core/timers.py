"""Grow/shrink timer schedules ``g, s`` and the Eq. (1) constraint.

VINESTALK delays grow and shrink propagation with per-level timers
``g, s : L − {MAX} → R`` that must satisfy Eq. (1):

    Σ_{j=0}^{l} [s(j) − g(j)]  >  (δ+e) · n(l)      for every l < MAX.

This guarantees a climbing grow always outruns the shrink cleaning the
branch behind it (Lemma 4.3).  :class:`TimerSchedule` stores concrete
values and validates the constraint; :func:`grid_schedule` builds the
corollary's ``s(l) = s·r^l`` shape used by all grid experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..hierarchy.params import GeometryParams


class TimerScheduleError(ValueError):
    """The schedule violates Eq. (1) or basic sanity conditions."""


@dataclass(frozen=True)
class TimerSchedule:
    """Concrete grow/shrink timer values for levels ``0 .. MAX−1``.

    Attributes:
        g_values: Grow dwell per level.
        s_values: Shrink dwell per level.
    """

    g_values: Tuple[float, ...]
    s_values: Tuple[float, ...]

    @property
    def max_level(self) -> int:
        """MAX; timers are defined for levels strictly below it."""
        return len(self.g_values)

    def g(self, level: int) -> float:
        return self.g_values[self._check(level)]

    def s(self, level: int) -> float:
        return self.s_values[self._check(level)]

    def _check(self, level: int) -> int:
        if not 0 <= level < len(self.g_values):
            raise ValueError(
                f"timer level {level} outside 0..{len(self.g_values) - 1}"
            )
        return level

    def validate(self, params: GeometryParams, delta: float, e: float) -> None:
        """Check Eq. (1) against the hierarchy geometry.

        Raises:
            TimerScheduleError: on any violated condition.
        """
        if len(self.g_values) != len(self.s_values):
            raise TimerScheduleError("g and s must have the same length")
        if len(self.g_values) != params.max_level:
            raise TimerScheduleError(
                f"schedule covers {len(self.g_values)} levels, "
                f"hierarchy needs MAX={params.max_level}"
            )
        for level, value in enumerate(self.g_values):
            if value < 0:
                raise TimerScheduleError(f"g({level}) < 0")
        running = 0.0
        for level in range(params.max_level):
            diff = self.s_values[level] - self.g_values[level]
            if diff <= 0:
                raise TimerScheduleError(f"s({level}) must exceed g({level})")
            running += diff
            bound = (delta + e) * params.n(level)
            if running <= bound:
                raise TimerScheduleError(
                    f"Eq.(1) violated at level {level}: "
                    f"Σ[s−g]={running} <= (δ+e)n({level})={bound}"
                )


def grid_schedule(
    params: GeometryParams,
    delta: float,
    e: float,
    r: int,
    g0: float = 0.0,
    slack: float = 3.0,
) -> TimerSchedule:
    """The corollary's geometric schedule: ``g(l)=g0``, ``s(l)=g0+slack·(δ+e)·r^l``.

    With ``slack >= 3`` the running sum ``Σ_{j≤l}[s−g] = slack·(δ+e)·(r^{l+1}−1)/(r−1)
    ≥ slack·(δ+e)·r^l`` strictly exceeds ``(δ+e)·n(l) = (δ+e)(2r^l − 1)``.

    Raises:
        TimerScheduleError: if the resulting schedule fails Eq. (1)
            (e.g. ``slack`` too small).
    """
    if slack <= 0:
        raise TimerScheduleError("slack must be positive")
    levels = range(params.max_level)
    g_vals = tuple(float(g0) for _ in levels)
    s_vals = tuple(g0 + slack * (delta + e) * r**l for l in levels)
    schedule = TimerSchedule(g_vals, s_vals)
    schedule.validate(params, delta, e)
    return schedule


def uniform_schedule(
    params: GeometryParams, delta: float, e: float, margin: float = 1.5
) -> TimerSchedule:
    """A level-independent schedule: ``g(l)=0``, ``s(l)`` flat but Eq.(1)-safe.

    Sets every ``s(l)`` to ``margin · (δ+e) · n(MAX−1)`` so even the final
    prefix sum clears the largest bound.  Simple, but much slower than
    the geometric schedule at low levels — used by the ablation bench.
    """
    if margin <= 1.0:
        raise TimerScheduleError("margin must exceed 1.0")
    top = (delta + e) * params.n(params.max_level - 1) * margin
    g_vals = tuple(0.0 for _ in range(params.max_level))
    s_vals = tuple(top for _ in range(params.max_level))
    schedule = TimerSchedule(g_vals, s_vals)
    schedule.validate(params, delta, e)
    return schedule
