"""VINESTALK system assembly (§III-B).

:class:`VineStalk` wires the full stack for one hierarchy:

* a :class:`~repro.vsa.layer.VsaNetwork` (simulator, executor, VSA hosts,
  C-gcast);
* one :class:`~repro.core.tracker.Tracker` per cluster, hosted as
  subautomaton ``V_{u,l}`` at the VSA of the cluster's head region and
  registered as that cluster's C-gcast process;
* one (static) :class:`~repro.core.client_tracking.TrackingClient` per
  region, receiving the augmented GPS ``move``/``left`` inputs and
  client-bound broadcasts;
* a :class:`~repro.core.finds.FindCoordinator` for find bookkeeping.

This is the *abstract* regime (every VSA alive) used by the theorem
experiments; the emulated regime lives in
:mod:`repro.core.emulated`.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..geometry.regions import RegionId
from ..hierarchy.cluster import ClusterId
from ..hierarchy.hierarchy import ClusterHierarchy
from ..mobility.evader import Evader
from ..mobility.models import MobilityModel
from ..sim.engine import Simulator
from ..tioa.actions import Action
from .client_tracking import TrackingClient
from .finds import FindCoordinator
from .state import SystemSnapshot, capture_snapshot
from .timers import TimerSchedule, grid_schedule
from .tracker import Tracker


class VineStalk:
    """A complete VINESTALK deployment over one cluster hierarchy.

    Args:
        hierarchy: The (validated) cluster hierarchy.
        delta: Broadcast delay ``δ``.
        e: VSA emulation lag ``e``.
        schedule: Grow/shrink timer schedule; defaults to the grid
            corollary schedule when the hierarchy exposes a base ``r``,
            else a schedule must be provided.
        sim: Optional externally owned simulator.
    """

    #: Tracker class to instantiate per cluster; baselines override this.
    tracker_cls = Tracker
    #: C-gcast implementation; the emulated system may use PhysicalCGcast.
    cgcast_cls = None
    #: Class-level fallback so checkpoints pickled before the sharding
    #: hooks existed unpickle into a working (unhooked) deployment.
    client_filter = None
    #: Class-level fallback so checkpoints pickled before the
    #: multi-object service existed unpickle into single-object systems
    #: (``self.evader`` keeps working; ``objects`` is rebuilt lazily).
    objects = None
    #: Optional :class:`~repro.energy.EnergyLedger` (set by ``build``
    #: when the config carries an energy model).  Class-level fallback
    #: keeps pre-energy checkpoints unpickling into unmetered systems.
    energy_ledger = None

    def __init__(
        self,
        hierarchy: ClusterHierarchy,
        delta: float = 1.0,
        e: float = 0.5,
        schedule: Optional[TimerSchedule] = None,
        sim: Optional[Simulator] = None,
    ) -> None:
        from ..vsa.layer import VsaNetwork

        self.hierarchy = hierarchy
        self.delta = delta
        self.e = e
        if schedule is None:
            r = getattr(hierarchy, "r", None)
            if r is None:
                raise ValueError(
                    "hierarchy has no grid base r; pass an explicit schedule"
                )
            schedule = grid_schedule(hierarchy.params, delta, e, r)
        schedule.validate(hierarchy.params, delta, e)
        self.schedule = schedule

        if self.cgcast_cls is not None:
            self.network = VsaNetwork(
                hierarchy, delta=delta, e=e, sim=sim, cgcast_cls=self.cgcast_cls
            )
        else:
            self.network = VsaNetwork(hierarchy, delta=delta, e=e, sim=sim)
        self.sim = self.network.sim
        self.cgcast = self.network.cgcast

        # One Tracker per cluster, hosted at its head region's VSA.
        self.trackers: Dict[ClusterId, Tracker] = {}
        for clust in hierarchy.all_clusters():
            tracker = self.tracker_cls(
                hierarchy, clust, self.cgcast, schedule, delta, e
            )
            head = hierarchy.head(clust)
            self.network.add_subautomaton(head, f"tracker:l{clust.level}", tracker)
            self.cgcast.register_process(clust, tracker)
            self.trackers[clust] = tracker

        # One static client per region.
        self.clients: Dict[RegionId, TrackingClient] = {}
        for index, region in enumerate(hierarchy.tiling.regions()):
            client = TrackingClient(index, hierarchy, self.cgcast)
            client.home_region = region
            self.network.add_client(client)
            client.handle_input(Action.input("GPSupdate", region=region))
            self.cgcast.register_client_sink(
                region, self._client_sink(client)
            )
            self.clients[region] = client

        self.finds = FindCoordinator(self.sim)
        self.cgcast.observe(self.finds.observe_send)
        for client in self.clients.values():
            client.on_found(self.finds.client_found)

        self.evader: Optional[Evader] = None
        #: All tracked objects by id; ``objects[0] is evader`` when the
        #: legacy single evader is attached (DESIGN.md §9).
        self.objects: Dict[int, Evader] = {}
        self.moves_observed = 0
        #: Optional GPS-staleness hook (repro.faults): ``(event, region)
        #: -> extra delay``.  When None or 0.0, augmented-GPS delivery
        #: stays synchronous (the §IV-C atomic-move model).
        self.gps_fault_delay = None
        #: Optional region-ownership predicate (repro.sim.sharded).
        #: When set, augmented-GPS move/left inputs reach only clients
        #: of owned regions — the evader replica moves in every shard,
        #: but each region's client reacts in exactly one shard.
        self.client_filter = None

    # ------------------------------------------------------------------
    # Wiring helpers
    # ------------------------------------------------------------------
    def _client_sink(self, client: TrackingClient):
        def sink(message) -> None:
            if not client.failed:
                client.handle_input(Action.input("cTOBrcv", message=message))
                self.network.executor.kick(client)

        return sink

    # ------------------------------------------------------------------
    # Evader management
    # ------------------------------------------------------------------
    def make_evader(
        self,
        model: MobilityModel,
        dwell: float,
        rng=None,
        start: Optional[RegionId] = None,
        object_id: int = 0,
    ) -> Evader:
        """Create, attach and place an evader (emits the first ``move``)."""
        name = "evader" if object_id == 0 else f"evader:{object_id}"
        evader = Evader(
            self.sim,
            self.hierarchy.tiling,
            model,
            dwell,
            rng=rng,
            name=name,
            object_id=object_id,
        )
        self.attach_object(object_id, evader)
        evader.enter(start)
        return evader

    def attach_evader(self, evader: Evader) -> None:
        """Attach the legacy single evader (object id 0)."""
        self.attach_object(0, evader)

    def attach_object(self, object_id: int, evader: Evader) -> None:
        """Attach one tracked object to lane ``object_id``."""
        objects = self.objects
        if objects is None:
            objects = {}
            self.objects = objects
        if object_id in objects or (object_id == 0 and self.evader is not None):
            raise RuntimeError(
                f"an evader is already attached for object {object_id}"
            )
        objects[object_id] = evader
        if object_id == 0:
            self.evader = evader
            # Bound-method observer, exactly as the pre-service code
            # registered it (single-object runs stay bit-identical).
            evader.observe(self._evader_event)
        else:
            evader.observe(
                lambda event, region, _oid=object_id: self._evader_event(
                    event, region, _oid
                )
            )

    def object_evader(self, object_id: int) -> Optional[Evader]:
        """The evader attached to lane ``object_id``, if any."""
        objects = self.objects
        if objects:
            found = objects.get(object_id)
            if found is not None:
                return found
        if object_id == 0:
            return self.evader
        return None

    def _evader_event(
        self, event: str, region: RegionId, object_id: int = 0
    ) -> None:
        """Augmented GPS: deliver move/left to the region's clients (§III).

        Delivery is synchronous — client local steps take no time, and
        the §IV-C model treats one evader move as atomically putting both
        the shrink and the grow in transit (there is no observable state
        between the ``left`` and the ``move``).
        """
        if event == "move":
            self.moves_observed += 1
        if self.gps_fault_delay is not None:
            extra = self.gps_fault_delay(event, region)
            if extra > 0.0:
                self.sim.call_after(
                    extra,
                    lambda: self._deliver_evader_event(event, region, object_id),
                    tag="gps-stale",
                )
                return
        self._deliver_evader_event(event, region, object_id)

    def _deliver_evader_event(
        self, event: str, region: RegionId, object_id: int = 0
    ) -> None:
        if self.client_filter is not None and not self.client_filter(region):
            return
        if event == "move" and self.energy_ledger is not None:
            # One detection per delivered move, behind the client filter
            # so each sense is charged in exactly one shard.
            self.energy_ledger.charge_sense(region)
        client = self.clients.get(region)
        if client is not None and not client.failed:
            if object_id == 0:
                # Payload identical to the pre-service code: lane-0
                # traces/fingerprints stay bit-identical.
                action = Action.input(event, region=region)
            else:
                action = Action.input(event, region=region, object_id=object_id)
            client.handle_input(action)
            self.network.executor.kick(client)

    # ------------------------------------------------------------------
    # Find API
    # ------------------------------------------------------------------
    def issue_find(
        self,
        origin: RegionId,
        retry_after: Optional[float] = None,
        max_retries: int = 3,
        find_id: Optional[int] = None,
        object_id: int = 0,
        deadline: Optional[float] = None,
    ) -> int:
        """Inject a find request at ``origin``'s client; returns the find id.

        Args:
            origin: Region whose client issues the query.
            retry_after: If set, re-issue the (same) find every
                ``retry_after`` time units until it completes or
                ``max_retries`` re-issues have fired.  Useful under VSA
                churn, where a find can die with a failed process.
            max_retries: Cap on re-issues when ``retry_after`` is set.
            find_id: Pre-assigned global id (sharded workloads assign
                ids in script order so shards never collide); defaults
                to the coordinator's own allocation.
            object_id: Which tracked object the query targets (§9).
            deadline: Optional latency budget recorded on the find.
        """
        client = self.clients[origin]
        target = self.object_evader(object_id)
        evader_region = target.region if target is not None else None
        find_id = self.finds.new_find(
            origin,
            evader_region,
            find_id=find_id,
            object_id=object_id,
            deadline=deadline,
        )
        self.network.executor.deliver(
            client, self._find_action(find_id, object_id)
        )
        if retry_after is not None:
            self._schedule_find_retry(
                origin, find_id, retry_after, max_retries, object_id
            )
        return find_id

    @staticmethod
    def _find_action(find_id: int, object_id: int) -> Action:
        if object_id == 0:
            # Payload identical to the pre-service code (bit-identity).
            return Action.input("find", find_id=find_id)
        return Action.input("find", find_id=find_id, object_id=object_id)

    def _schedule_find_retry(
        self,
        origin: RegionId,
        find_id: int,
        retry_after: float,
        retries_left: int,
        object_id: int = 0,
    ) -> None:
        if retries_left <= 0:
            return

        def retry() -> None:
            record = self.finds.records[find_id]
            if record.completed:
                return
            client = self.clients[origin]
            if not client.failed:
                self.network.executor.deliver(
                    client, self._find_action(find_id, object_id)
                )
                record.retries += 1
            self._schedule_find_retry(
                origin, find_id, retry_after, retries_left - 1, object_id
            )

        self.sim.call_after(retry_after, retry, tag=f"find-retry:{find_id}")

    # ------------------------------------------------------------------
    # Execution helpers
    # ------------------------------------------------------------------
    def run(self, duration: float) -> None:
        self.sim.run_until(self.sim.now + duration)

    def run_to_quiescence(self, max_events: Optional[int] = None) -> int:
        """Drain all pending events (requires mobility to be stopped)."""
        return self.sim.run(max_events=max_events)

    def settle_time(self) -> float:
        """An upper bound on the time for one move's updates to settle."""
        from ..mobility.speed import atomic_dwell

        return atomic_dwell(self.schedule, self.hierarchy.params, self.delta, self.e)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> SystemSnapshot:
        return capture_snapshot(self)

    def tracker(self, clust: ClusterId) -> Tracker:
        return self.trackers[clust]

    def tracker_at(self, region: RegionId, level: int) -> Tracker:
        return self.trackers[self.hierarchy.cluster(region, level)]
