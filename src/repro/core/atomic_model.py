"""The atomic reference model: ``init``, ``atomicMove``, ``atomicMoveSeq`` (§IV-C).

This is an *independent* specification of what the tracking structure
must look like after each evader move, written directly from the
definitions (vertical growth, lateral joins via secondary pointers,
bottom-up shrink to the junction) — it shares no code with the Tracker
automaton or with ``lookAhead``.  Theorem 4.8 equates
``lookAhead(execution state)`` with ``atomicMoveSeq(move sequence)``;
the test-suite and benchmark E5 check exactly that equation.
"""

from __future__ import annotations

from typing import List

from ..geometry.regions import RegionId
from ..hierarchy.cluster import ClusterId
from ..hierarchy.hierarchy import ClusterHierarchy
from .state import PointerState, SystemSnapshot


class AtomicModelError(ValueError):
    """An atomicMove precondition is violated (e.g. non-neighbor move)."""


def empty_state(hierarchy: ClusterHierarchy) -> SystemSnapshot:
    """The initial state: every pointer ⊥, no messages."""
    return SystemSnapshot(
        pointers={cid: PointerState() for cid in hierarchy.all_clusters()},
        in_transit=[],
    )


def init_state(hierarchy: ClusterHierarchy, region: RegionId) -> SystemSnapshot:
    """``init(c_0)``: consistent state whose path is a vertical growth.

    The path is ``cluster(region, MAX), …, cluster(region, 0)`` with the
    level-0 self-pointer, every ``p`` a hierarchy parent, and the
    secondary pointers forced by consistency condition 3.
    """
    state = empty_state(hierarchy)
    ptr = state.pointers
    chain = hierarchy.chain(region)  # level 0 .. MAX
    ptr[chain[0]].c = chain[0]
    for lower, upper in zip(chain, chain[1:]):
        ptr[lower].p = upper
        ptr[upper].c = lower
    for cluster in chain[:-1]:  # every path process below MAX grew vertically
        for nbr in hierarchy.nbrs(cluster):
            ptr[nbr].nbrptup = cluster
    return state


def atomic_move(
    hierarchy: ClusterHierarchy,
    state: SystemSnapshot,
    new_region: RegionId,
) -> SystemSnapshot:
    """``atomicMove``: the consistent state after one atomic evader move.

    Args:
        hierarchy: The cluster hierarchy.
        state: A *consistent* state with a tracking path.
        new_region: The evader's new region — must be the old region or a
            neighbor of it.

    The construction mirrors the definition: grow a new vertical segment
    from ``cluster(new_region, 0)``, joining the old path at the first
    process already on it (or laterally at a neighbor flagged by
    ``nbrptup``); then shrink the deserted branch bottom-up to the
    junction, clearing the secondary pointers of removed processes.
    """
    ptr_in = state.pointers
    old_terminus = _terminus(hierarchy, state)
    new_c0 = hierarchy.cluster(new_region, 0)
    if new_c0 == old_terminus:
        return state.copy()
    old_region = hierarchy.head(old_terminus)  # level-0 cluster == region
    if not hierarchy.tiling.are_neighbors(old_region, new_region):
        raise AtomicModelError(
            f"atomicMove requires a neighbor move, got {old_region!r}->{new_region!r}"
        )

    state = state.copy()
    ptr = state.pointers

    # --- grow phase ------------------------------------------------------
    clust = new_c0
    ptr[clust].c = clust
    while ptr[clust].p is None and clust.level != hierarchy.max_level:
        if ptr[clust].nbrptup is not None:
            parent = ptr[clust].nbrptup  # lateral join
            ptr[clust].p = parent
            for nbr in hierarchy.nbrs(clust):
                ptr[nbr].nbrptdown = clust
        else:
            parent = hierarchy.parent(clust)  # vertical growth
            ptr[clust].p = parent
            for nbr in hierarchy.nbrs(clust):
                ptr[nbr].nbrptup = clust
        ptr[parent].c = clust
        clust = parent

    # --- shrink phase ------------------------------------------------------
    clust = old_terminus
    if ptr[clust].c == clust:
        ptr[clust].c = None  # the client's shrink message
    if ptr[clust].c is not None:
        # The grow already repointed the old terminus (it is the junction,
        # e.g. on a move straight back): the shrink dies immediately.
        return state
    while ptr[clust].p is not None and clust.level != hierarchy.max_level:
        for nbr in hierarchy.nbrs(clust):
            if ptr[nbr].nbrptup == clust:
                ptr[nbr].nbrptup = None
            if ptr[nbr].nbrptdown == clust:
                ptr[nbr].nbrptdown = None
        parent = ptr[clust].p
        if ptr[parent].c == clust:
            ptr[clust].p = None
            ptr[parent].c = None
            clust = parent
        else:
            ptr[clust].p = None
    return state


def atomic_move_seq(
    hierarchy: ClusterHierarchy, regions: List[RegionId]
) -> SystemSnapshot:
    """``atomicMoveSeq``: fold ``atomicMove`` over a region sequence."""
    if not regions:
        raise AtomicModelError("atomicMoveSeq needs at least the initial region")
    state = init_state(hierarchy, regions[0])
    for region in regions[1:]:
        state = atomic_move(hierarchy, state, region)
    return state


def _terminus(hierarchy: ClusterHierarchy, state: SystemSnapshot) -> ClusterId:
    """The level-0 terminus of the state's tracking path."""
    current = hierarchy.root()
    if state.pointers[current].c is None:
        raise AtomicModelError("state has no tracking path")
    seen = set()
    while True:
        child = state.pointers[current].c
        if child == current:
            return current
        if child is None or child in seen:
            raise AtomicModelError(f"broken tracking path at {current}")
        seen.add(current)
        current = child
