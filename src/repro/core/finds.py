"""Find operation bookkeeping (§V).

The protocol itself carries no per-find state beyond the ``finding``
flags; to evaluate Theorem 5.2 the harness needs to know, per find:
where it started, when it started, when (and where) the first matching
``found`` output occurred, and how much communication it consumed.
:class:`FindCoordinator` issues find ids, listens to client ``found``
outputs and to C-gcast send records, and aggregates those facts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..geometry.regions import RegionId
from ..geocast.cgcast import SendRecord
from ..sim.engine import Simulator
from .messages import is_find_message


class FindIdCollisionError(ValueError):
    """A pre-assigned find id is already in use by another record."""


@dataclass
class FindRecord:
    """Lifecycle of one find operation."""

    find_id: int
    origin: RegionId
    issued_at: float
    evader_region_at_issue: Optional[RegionId] = None
    completed_at: Optional[float] = None
    found_region: Optional[RegionId] = None
    work: float = 0.0
    retries: int = 0
    #: Which tracked object this find targets (DESIGN.md §9).
    object_id: int = 0
    #: Optional latency budget (relative to ``issued_at``); ``None``
    #: means no deadline.
    deadline: Optional[float] = None

    @property
    def completed(self) -> bool:
        return self.completed_at is not None

    @property
    def latency(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.issued_at

    @property
    def deadline_missed(self) -> bool:
        """True when a deadline was set and the find did not beat it.

        An uncompleted find with a deadline counts as missed — the
        service-level miss rate must not improve by dropping queries.
        """
        if self.deadline is None:
            return False
        if self.completed_at is None:
            return True
        return (self.completed_at - self.issued_at) > self.deadline


class FindCoordinator:
    """Issues find ids and aggregates per-find outcomes."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._next_id = 1
        self.records: Dict[int, FindRecord] = {}

    def new_find(
        self,
        origin: RegionId,
        evader_region: Optional[RegionId] = None,
        find_id: Optional[int] = None,
        object_id: int = 0,
        deadline: Optional[float] = None,
    ) -> int:
        """Allocate a find id for a query issued at ``origin``.

        A pre-assigned ``find_id`` (sharded/service workloads use
        globally unique script-order ids) bypasses local allocation.
        The two schemes may interleave arbitrarily: local allocation
        skips over any id already taken (a pre-assigned id *below* the
        counter would otherwise be handed out a second time), and a
        pre-assigned id colliding with an existing record raises
        :class:`FindIdCollisionError` rather than silently overwriting
        bookkeeping.
        """
        if find_id is None:
            find_id = self._next_id
            while find_id in self.records:
                find_id += 1
            self._next_id = find_id + 1
        else:
            if find_id in self.records:
                raise FindIdCollisionError(
                    f"find id {find_id} already in use"
                )
            if find_id >= self._next_id:
                self._next_id = find_id + 1
        self.records[find_id] = FindRecord(
            find_id=find_id,
            origin=origin,
            issued_at=self.sim.now,
            evader_region_at_issue=evader_region,
            object_id=object_id,
            deadline=deadline,
        )
        return find_id

    # -- wiring ----------------------------------------------------------
    def client_found(self, find_id: int, region: RegionId, client_id: int) -> None:
        """Client ``found`` output observer (first response wins)."""
        record = self.records.get(find_id)
        if record is None or record.completed:
            return
        record.completed_at = self.sim.now
        record.found_region = region

    def observe_send(self, record: SendRecord) -> None:
        """C-gcast observer: attribute find-message work to its find.

        Every send carrying the find's id counts, including the
        ``found`` relays after the first client response: completion is
        only known to the one shard that saw the responding client, so
        gating on it would make per-find work depend on the shard
        layout rather than on the (K-invariant) send set.
        """
        payload = record.payload
        if not is_find_message(payload):
            return
        find_id = getattr(payload, "find_id", 0)
        find = self.records.get(find_id)
        if find is not None:
            find.work += record.cost

    # -- results -----------------------------------------------------------
    def completed_records(self) -> List[FindRecord]:
        return [r for r in self.records.values() if r.completed]

    def outstanding(self) -> List[FindRecord]:
        return [r for r in self.records.values() if not r.completed]

    def completion_rate(self) -> float:
        if not self.records:
            return 1.0
        return len(self.completed_records()) / len(self.records)

    def records_for(self, object_id: int) -> List[FindRecord]:
        """All records targeting one tracked object (script order)."""
        return [
            r
            for r in self.records.values()
            if getattr(r, "object_id", 0) == object_id
        ]
