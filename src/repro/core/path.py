"""Path segments and tracking paths (§IV-C terminology).

A *path segment* ``{c_x, …, c_0}`` is a cluster sequence chained by
``c``/``p`` pointers subject to the lateral-link typing rules; a
*tracking path* is a segment from the level-MAX root down to the
evader's level-0 cluster with the self-pointer terminus
``c_0.c = c_0``.  These predicates operate on
:class:`~repro.core.state.SystemSnapshot` objects.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..geometry.regions import RegionId
from ..hierarchy.cluster import ClusterId
from ..hierarchy.hierarchy import ClusterHierarchy
from .state import SystemSnapshot


def extract_path(
    snapshot: SystemSnapshot, hierarchy: ClusterHierarchy
) -> Tuple[List[ClusterId], bool]:
    """Follow ``c`` pointers from the root.

    Returns:
        ``(sequence, terminated)`` where ``sequence`` runs root-first and
        ``terminated`` is True iff it ends in a level-0 self-pointer
        (``c_0.c = c_0``).  A root with ``c = ⊥`` yields ``([], False)``.
    """
    root = hierarchy.root()
    sequence: List[ClusterId] = []
    current = root
    if snapshot.pointers[root].c is None:
        return [], False
    visited = set()
    while True:
        sequence.append(current)
        visited.add(current)
        child = snapshot.pointers[current].c
        if child is None:
            return sequence, False
        if child == current:
            return sequence, True
        if child in visited:  # defensive: pointer cycle
            return sequence, False
        current = child


def check_path_segment(
    snapshot: SystemSnapshot,
    hierarchy: ClusterHierarchy,
    sequence: List[ClusterId],
) -> List[str]:
    """Violations of the path-segment conditions for ``sequence``.

    ``sequence`` is ordered ``[c_x, …, c_0]`` (root-first, as produced by
    :func:`extract_path`).  Returns an empty list iff it is a valid path
    segment.
    """
    problems: List[str] = []
    if not sequence:
        return ["empty sequence"]
    ptr = snapshot.pointers

    cx = sequence[0]
    if cx.level == hierarchy.max_level:
        # Condition 1: root has p = ⊥ and c ∈ children ∪ {⊥}.
        if ptr[cx].p is not None:
            problems.append(f"root {cx} has p={ptr[cx].p}")
        if ptr[cx].c is not None and ptr[cx].c not in hierarchy.children(cx):
            problems.append(f"root {cx} has non-child c={ptr[cx].c}")

    # Condition 2: chain links ck.c = ck−1 and (ck.c).p = ck.
    for upper, lower in zip(sequence, sequence[1:]):
        if ptr[upper].c != lower:
            problems.append(f"{upper}.c={ptr[upper].c} != {lower}")
        if ptr[lower].p != upper:
            problems.append(f"{lower}.p={ptr[lower].p} != {upper}")

    # Conditions 3 and 4: pointer typing depending on how ck connects.
    terminus = sequence[-1]
    for ck in sequence:
        pk = ptr[ck].p
        ck_c = ptr[ck].c
        is_terminus_level0 = ck == terminus and ck.level == 0
        if pk is None:
            continue
        lateral = pk in hierarchy.nbrs(ck)
        vertical = pk == hierarchy.parent(ck)
        if not lateral and not vertical:
            problems.append(f"{ck}.p={pk} is neither neighbor nor parent")
            continue
        if lateral:
            if is_terminus_level0:
                if ck_c is not None and ck_c != ck:
                    problems.append(f"lateral terminus {ck} has c={ck_c}")
            else:
                if ck_c is not None and ck_c not in hierarchy.children(ck):
                    problems.append(f"lateral {ck} has non-child c={ck_c}")
        else:  # vertical
            allowed = set(hierarchy.children(ck)) | set(hierarchy.nbrs(ck))
            if is_terminus_level0:
                if ck_c is not None and ck_c != ck and ck_c not in hierarchy.nbrs(ck):
                    problems.append(f"vertical terminus {ck} has c={ck_c}")
            else:
                if ck_c is not None and ck_c not in allowed:
                    problems.append(f"vertical {ck} has c={ck_c} outside children∪nbrs")
    return problems


def check_tracking_path(
    snapshot: SystemSnapshot,
    hierarchy: ClusterHierarchy,
    evader_region: RegionId,
) -> Tuple[Optional[List[ClusterId]], List[str]]:
    """Extract and validate the tracking path for an evader at ``evader_region``.

    Returns:
        ``(path, problems)``; ``path`` is the extracted sequence (or None
        when the root has no child) and ``problems`` is empty iff it is a
        valid tracking path terminating at the evader.
    """
    sequence, terminated = extract_path(snapshot, hierarchy)
    if not sequence:
        return None, ["no tracking path (root has c = ⊥)"]
    problems = check_path_segment(snapshot, hierarchy, sequence)
    if not terminated:
        problems.append(f"path does not terminate in a self-pointer: {sequence}")
    expected_terminus = hierarchy.cluster(evader_region, 0)
    if sequence[-1] != expected_terminus:
        problems.append(
            f"path ends at {sequence[-1]}, evader is at {expected_terminus}"
        )
    if sequence[0].level != hierarchy.max_level:
        problems.append("path does not start at level MAX")
    return sequence, problems


def lateral_link_count(
    snapshot: SystemSnapshot, hierarchy: ClusterHierarchy, sequence: List[ClusterId]
) -> int:
    """Number of lateral links (``p ∈ nbrs``) along a path sequence."""
    count = 0
    for ck in sequence:
        pk = snapshot.pointers[ck].p
        if pk is not None and pk in hierarchy.nbrs(ck):
            count += 1
    return count


def laterals_per_level_ok(
    snapshot: SystemSnapshot, hierarchy: ClusterHierarchy, sequence: List[ClusterId]
) -> bool:
    """At most one lateral link per level (the §IV-B design invariant)."""
    seen_levels = set()
    for ck in sequence:
        pk = snapshot.pointers[ck].p
        if pk is not None and pk in hierarchy.nbrs(ck):
            if ck.level in seen_levels:
                return False
            seen_levels.add(ck.level)
    return True
