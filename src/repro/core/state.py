"""System state snapshots for verification (§IV-C machinery).

The correctness argument of the paper manipulates *system states*:
per-cluster pointer values plus the multiset of tracking messages in
transit.  :class:`SystemSnapshot` captures exactly that from a live
simulation (including each Tracker's ``sendq``, whose entries count as
"queued" messages), in a form the ``lookAhead`` function and the
consistency checker can manipulate without touching the simulation.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..hierarchy.cluster import ClusterId
from .messages import TrackerMessage, is_move_message

# The four Fig. 2 pointers; None is ⊥.
PointerTuple = Tuple[
    Optional[ClusterId], Optional[ClusterId], Optional[ClusterId], Optional[ClusterId]
]


@dataclass
class PointerState:
    """Mutable pointer record of one cluster process."""

    c: Optional[ClusterId] = None
    p: Optional[ClusterId] = None
    nbrptup: Optional[ClusterId] = None
    nbrptdown: Optional[ClusterId] = None

    def as_tuple(self) -> PointerTuple:
        return (self.c, self.p, self.nbrptup, self.nbrptdown)

    def copy(self) -> "PointerState":
        return PointerState(self.c, self.p, self.nbrptup, self.nbrptdown)


@dataclass(frozen=True)
class TransitMessage:
    """One tracking message in transit (or queued in a sendq).

    Attributes:
        src: Sending cluster (None for client-originated messages).
        dest: Destination cluster.
        payload: The :class:`~repro.core.messages.TrackerMessage`.
    """

    src: Optional[ClusterId]
    dest: ClusterId
    payload: TrackerMessage


@dataclass
class SystemSnapshot:
    """Pointer values of every cluster plus move messages in flight."""

    pointers: Dict[ClusterId, PointerState]
    in_transit: List[TransitMessage] = field(default_factory=list)

    def copy(self) -> "SystemSnapshot":
        return SystemSnapshot(
            pointers={cid: ps.copy() for cid, ps in self.pointers.items()},
            in_transit=list(self.in_transit),
        )

    def pointer_map(self) -> Dict[ClusterId, PointerTuple]:
        """Canonical, comparable view of all pointer values."""
        return {cid: ps.as_tuple() for cid, ps in self.pointers.items()}

    def nonbottom_pointers(self) -> Dict[ClusterId, PointerTuple]:
        """Only the clusters with at least one non-⊥ pointer (for diffs)."""
        return {
            cid: ps.as_tuple()
            for cid, ps in self.pointers.items()
            if ps.as_tuple() != (None, None, None, None)
        }

    def messages_of_kind(self, *types) -> List[TransitMessage]:
        return [m for m in self.in_transit if isinstance(m.payload, types)]


def capture_snapshot(system, object_id: int = 0) -> SystemSnapshot:
    """Capture the current tracking state of a VINESTALK system.

    Includes every Tracker's pointers, its queued ``sendq`` entries, and
    all move messages in transit in C-gcast.  Find-phase messages are
    excluded: the §IV-C state space covers only the tracking structure.

    In a multi-object deployment each lane is an independent instance
    of the §IV-C state space; ``object_id`` selects which lane's
    pointers and messages are captured (messages of other lanes are
    invisible to this snapshot, exactly as find messages are).

    Args:
        system: A :class:`~repro.core.vinestalk.VineStalk` instance.
        object_id: Which tracking lane to capture (default: lane 0).
    """
    pointers: Dict[ClusterId, PointerState] = {}
    in_transit: List[TransitMessage] = []
    for tracker in system.trackers.values():
        pointers[tracker.clust] = PointerState(*tracker.pointer_state(object_id))
        for dest, payload in tracker.sendq:
            if (
                is_move_message(payload)
                and getattr(payload, "object_id", 0) == object_id
            ):
                in_transit.append(TransitMessage(tracker.clust, dest, payload))
    for src, dest, payload, _time in system.cgcast.in_transit():
        if isinstance(dest, tuple):  # client broadcast, not a cluster message
            continue
        if not isinstance(payload, TrackerMessage) or not is_move_message(payload):
            continue
        if getattr(payload, "object_id", 0) != object_id:
            continue
        src_cluster = src if isinstance(src, ClusterId) else None
        in_transit.append(TransitMessage(src_cluster, dest, payload))
    return SystemSnapshot(pointers, in_transit)
