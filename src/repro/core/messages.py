"""Tracker messages (Fig. 2 signature).

All messages are ``⟨kind, v⟩`` pairs where ``v`` is a cluster id: the
sender's cluster for most kinds, the forwarded pointer for ``findAck``.
Find-phase messages additionally carry a ``find_id`` — a bookkeeping tag
used by the experiment harness to attribute work and latency to
individual find operations; it does not influence the algorithm
(DESIGN.md §3).

Every message also carries an ``object_id`` selecting which of the
hierarchy's independent tracking paths it belongs to (DESIGN.md §9).
The default ``0`` is the single-evader lane of the original paper; the
field defaults keep messages pickled before the multi-object service
existed unpicklable-compatible (missing instance attributes fall back
to the class attribute the dataclass default installs).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional

from ..hierarchy.cluster import ClusterId


@dataclass(frozen=True)
class TrackerMessage:
    """Base class of all tracking-protocol messages."""

    _kind = "trackermessage"

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        cls._kind = cls.__name__.lower()

    @property
    def kind(self) -> str:
        return self._kind

    def __repr__(self) -> str:
        # ``object_id=0`` (the single-evader lane of the original
        # paper) renders in the legacy pre-service form: trace lines
        # and their pinned fingerprints are built from these reprs, and
        # lane-0 runs must stay bit-identical to the seed engine.
        parts = []
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "object_id" and value == 0:
                continue
            parts.append(f"{f.name}={value!r}")
        return f"{type(self).__name__}({', '.join(parts)})"


@dataclass(frozen=True, repr=False)
class Grow(TrackerMessage):
    """Extend the tracking path: ``cid`` is the sender (new child)."""

    cid: ClusterId
    object_id: int = 0


@dataclass(frozen=True, repr=False)
class GrowNbr(TrackerMessage):
    """Sender ``cid`` joined the path via a lateral link (sets nbrptdown)."""

    cid: ClusterId
    object_id: int = 0


@dataclass(frozen=True, repr=False)
class GrowPar(TrackerMessage):
    """Sender ``cid`` joined the path via its hierarchy parent (sets nbrptup)."""

    cid: ClusterId
    object_id: int = 0


@dataclass(frozen=True, repr=False)
class Shrink(TrackerMessage):
    """Remove deadwood: sender ``cid`` asks its path parent to drop it."""

    cid: ClusterId
    object_id: int = 0


@dataclass(frozen=True, repr=False)
class ShrinkUpd(TrackerMessage):
    """Sender ``cid`` left the path; neighbors clear secondary pointers."""

    cid: ClusterId
    object_id: int = 0


@dataclass(frozen=True, repr=False)
class Find(TrackerMessage):
    """A find operation in flight; ``cid`` is the forwarding process."""

    cid: Optional[ClusterId]
    find_id: int = 0
    object_id: int = 0


@dataclass(frozen=True, repr=False)
class FindQuery(TrackerMessage):
    """Search-phase neighbor query from process ``cid``."""

    cid: ClusterId
    find_id: int = 0
    object_id: int = 0


@dataclass(frozen=True, repr=False)
class FindAck(TrackerMessage):
    """Answer to a findQuery: ``pointer`` leads toward the tracking path."""

    pointer: ClusterId
    find_id: int = 0
    object_id: int = 0


@dataclass(frozen=True, repr=False)
class Found(TrackerMessage):
    """Tracing finished at the evader's region."""

    find_id: int = 0
    object_id: int = 0


# Kinds whose in-transit presence violates a consistent state (§IV-C).
MOVE_MESSAGE_TYPES = (Grow, GrowNbr, GrowPar, Shrink, ShrinkUpd)
FIND_MESSAGE_TYPES = (Find, FindQuery, FindAck, Found)


def is_move_message(message: TrackerMessage) -> bool:
    return isinstance(message, MOVE_MESSAGE_TYPES)


def is_find_message(message: TrackerMessage) -> bool:
    return isinstance(message, FIND_MESSAGE_TYPES)
