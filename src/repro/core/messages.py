"""Tracker messages (Fig. 2 signature).

All messages are ``⟨kind, v⟩`` pairs where ``v`` is a cluster id: the
sender's cluster for most kinds, the forwarded pointer for ``findAck``.
Find-phase messages additionally carry a ``find_id`` — a bookkeeping tag
used by the experiment harness to attribute work and latency to
individual find operations; it does not influence the algorithm
(DESIGN.md §3).

Every message also carries an ``object_id`` selecting which of the
hierarchy's independent tracking paths it belongs to (DESIGN.md §9).
The default ``0`` is the single-evader lane of the original paper.

Messages are ``slots=True`` dataclasses: the dispatch path allocates
one per send and they live in queues, event closures and checkpoint
payloads by the hundred thousand at M=10k, so the per-instance dict is
worth dropping.  :func:`_compat_setstate` keeps payloads pickled by
older (dict-based) builds loadable: it accepts the legacy attribute
dict — filling fields the old build didn't have (e.g. ``object_id``)
from their dataclass defaults — as well as the field-list state the
slots dataclass emits.
"""

from __future__ import annotations

from dataclasses import MISSING, dataclass, fields
from typing import Dict, Optional, Tuple

from ..hierarchy.cluster import ClusterId

#: Field-name tuples by concrete message class: ``__repr__`` runs once
#: per send on the trace path, and ``dataclasses.fields`` re-resolves
#: the class metadata on every call.
_REPR_FIELDS: Dict[type, Tuple[str, ...]] = {}


def _compat_setstate(self, state) -> None:
    if isinstance(state, tuple) and len(state) == 2:
        mapping, slots = state
        state = dict(mapping or {})
        state.update(slots or {})
    if isinstance(state, dict):
        for key, value in state.items():
            object.__setattr__(self, key, value)
        for f in fields(self):
            if not hasattr(self, f.name) and f.default is not MISSING:
                object.__setattr__(self, f.name, f.default)
    else:
        for f, value in zip(fields(self), state):
            object.__setattr__(self, f.name, value)


@dataclass(frozen=True, slots=True)
class TrackerMessage:
    """Base class of all tracking-protocol messages."""

    _kind = "trackermessage"

    def __init_subclass__(cls, **kwargs) -> None:
        # No zero-arg super() here: ``slots=True`` rebuilds the class,
        # which orphans the implicit ``__class__`` cell.  The base is
        # ``object``, so there is nothing to forward to anyway.
        cls._kind = cls.__name__.lower()

    @property
    def kind(self) -> str:
        return self._kind

    def __repr__(self) -> str:
        # ``object_id=0`` (the single-evader lane of the original
        # paper) renders in the legacy pre-service form: trace lines
        # and their pinned fingerprints are built from these reprs, and
        # lane-0 runs must stay bit-identical to the seed engine.
        cls = type(self)
        names = _REPR_FIELDS.get(cls)
        if names is None:
            names = tuple(f.name for f in fields(self))
            _REPR_FIELDS[cls] = names
        parts = []
        for name in names:
            value = getattr(self, name)
            if name == "object_id" and value == 0:
                continue
            parts.append(f"{name}={value!r}")
        return f"{cls.__name__}({', '.join(parts)})"


@dataclass(frozen=True, repr=False, slots=True)
class Grow(TrackerMessage):
    """Extend the tracking path: ``cid`` is the sender (new child)."""

    cid: ClusterId
    object_id: int = 0


@dataclass(frozen=True, repr=False, slots=True)
class GrowNbr(TrackerMessage):
    """Sender ``cid`` joined the path via a lateral link (sets nbrptdown)."""

    cid: ClusterId
    object_id: int = 0


@dataclass(frozen=True, repr=False, slots=True)
class GrowPar(TrackerMessage):
    """Sender ``cid`` joined the path via its hierarchy parent (sets nbrptup)."""

    cid: ClusterId
    object_id: int = 0


@dataclass(frozen=True, repr=False, slots=True)
class Shrink(TrackerMessage):
    """Remove deadwood: sender ``cid`` asks its path parent to drop it."""

    cid: ClusterId
    object_id: int = 0


@dataclass(frozen=True, repr=False, slots=True)
class ShrinkUpd(TrackerMessage):
    """Sender ``cid`` left the path; neighbors clear secondary pointers."""

    cid: ClusterId
    object_id: int = 0


@dataclass(frozen=True, repr=False, slots=True)
class Find(TrackerMessage):
    """A find operation in flight; ``cid`` is the forwarding process."""

    cid: Optional[ClusterId]
    find_id: int = 0
    object_id: int = 0


@dataclass(frozen=True, repr=False, slots=True)
class FindQuery(TrackerMessage):
    """Search-phase neighbor query from process ``cid``."""

    cid: ClusterId
    find_id: int = 0
    object_id: int = 0


@dataclass(frozen=True, repr=False, slots=True)
class FindAck(TrackerMessage):
    """Answer to a findQuery: ``pointer`` leads toward the tracking path."""

    pointer: ClusterId
    find_id: int = 0
    object_id: int = 0


@dataclass(frozen=True, repr=False, slots=True)
class Found(TrackerMessage):
    """Tracing finished at the evader's region."""

    find_id: int = 0
    object_id: int = 0


@dataclass(frozen=True, repr=False, slots=True)
class Prewarm(TrackerMessage):
    """Speculative pre-configuration of a predicted future path segment.

    Sent by the predictive baseline (``repro.baselines.pack``) to the
    cluster expected to receive the next ``grow``: a fresh (unexpired)
    prewarm lets that cluster skip its grow-timer delay when the real
    grow lands.  ``cid`` is the predicted joining (child) cluster,
    ``expiry`` the sim time after which the speculation is stale.
    Advisory only — it is neither a move nor a find message, so its
    in-transit presence never violates a §IV-C consistent state and its
    work lands in the accountant's ``other`` bucket.
    """

    cid: ClusterId
    expiry: float = 0.0
    object_id: int = 0


# Kinds whose in-transit presence violates a consistent state (§IV-C).
MOVE_MESSAGE_TYPES = (Grow, GrowNbr, GrowPar, Shrink, ShrinkUpd)
FIND_MESSAGE_TYPES = (Find, FindQuery, FindAck, Found)
# Advisory extension messages (neither move- nor find-critical).
OTHER_MESSAGE_TYPES = (Prewarm,)

# slots=True makes the dataclass decorator install a __setstate__ that
# only understands its own field-list state; swap in the tolerant
# loader so pre-slots (dict-state) checkpoints keep restoring.
for _cls in (
    (TrackerMessage,)
    + MOVE_MESSAGE_TYPES
    + FIND_MESSAGE_TYPES
    + OTHER_MESSAGE_TYPES
):
    _cls.__setstate__ = _compat_setstate
del _cls


def is_move_message(message: TrackerMessage) -> bool:
    return isinstance(message, MOVE_MESSAGE_TYPES)


def is_find_message(message: TrackerMessage) -> bool:
    return isinstance(message, FIND_MESSAGE_TYPES)
