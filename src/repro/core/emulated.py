"""VINESTALK over the *emulated* VSA layer (§II-C.2 regime, experiment E9).

In the abstract regime every VSA is alive; here VSAs live and die with
the physical node population of their regions: when a region empties its
VSA fails (the hosted Trackers stop and lose state), and after
``t_restart`` of continuous re-occupancy it restarts from initial state.

The tracking theorems assume always-alive VSAs, so this mode is for
studying the layer semantics and the tracking structure's behaviour
under VSA churn: how long the structure stays broken, and how the next
evader moves rebuild it.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..geometry.regions import RegionId
from ..hierarchy.hierarchy import ClusterHierarchy
from ..physical.deployment import per_region_density
from ..physical.node import PhysicalNode
from ..sim.engine import Simulator
from .timers import TimerSchedule
from .vinestalk import VineStalk


class EmulatedVineStalk(VineStalk):
    """VINESTALK with VSAs emulated by a physical node population.

    Args:
        hierarchy: The cluster hierarchy.
        nodes_per_region: Initial population density.
        t_restart: Continuous-occupancy time to restart a failed VSA.
        delta, e, schedule, sim: As for :class:`VineStalk`.
    """

    def __init__(
        self,
        hierarchy: ClusterHierarchy,
        nodes_per_region: int = 2,
        t_restart: float = 5.0,
        delta: float = 1.0,
        e: float = 0.5,
        schedule: Optional[TimerSchedule] = None,
        sim: Optional[Simulator] = None,
        physical_routing: bool = False,
    ) -> None:
        if physical_routing:
            from ..geocast.physical import PhysicalCGcast

            self.cgcast_cls = PhysicalCGcast
        super().__init__(hierarchy, delta=delta, e=e, schedule=schedule, sim=sim)
        self.physical_routing = physical_routing
        if physical_routing:
            # Failed VSAs stop forwarding geocast hops through their region.
            for host in self.network.hosts.values():
                host.observe(self._host_lifecycle)
        self.nodes: List[PhysicalNode] = per_region_density(
            self.sim, hierarchy.tiling, nodes_per_region
        )
        self.emulation = self.network.enable_emulation(self.nodes, t_restart)

    def _host_lifecycle(self, host, event: str) -> None:
        self.cgcast.set_region_down(host.region, down=(event == "fail"))

    # ------------------------------------------------------------------
    # Region-targeted fault injection
    # ------------------------------------------------------------------
    def kill_region(self, region: RegionId) -> int:
        """Fail every node in ``region``; its VSA fails with them.

        Returns the number of nodes failed.
        """
        victims = self.emulation.population(region)
        for node in victims:
            node.fail()
        return len(victims)

    def revive_region(self, region: RegionId) -> int:
        """Restart this region's failed nodes (VSA restarts after t_restart)."""
        revived = 0
        for node in self.nodes:
            if not node.alive and node.region == region:
                node.restart()
                revived += 1
        return revived

    def failed_regions(self) -> List[RegionId]:
        return sorted(
            region for region, host in self.network.hosts.items() if host.failed
        )

    def path_is_intact(self) -> bool:
        """Does a full tracking path to the evader currently exist?

        A path cluster whose Tracker is failed does not count: the
        pointers only live in the (dead) emulation's memory.
        """
        from .path import check_tracking_path

        if self.evader is None or self.evader.region is None:
            return False
        path, problems = check_tracking_path(
            self.snapshot(), self.hierarchy, self.evader.region
        )
        if problems:
            return False
        return all(not self.trackers[clust].failed for clust in path or [])

    def random_churn(
        self,
        rng: random.Random,
        kill_probability: float,
        revive_probability: float,
    ) -> Dict[str, int]:
        """One churn round: independently kill/revive per region."""
        killed = revived = 0
        for region in self.hierarchy.tiling.regions():
            if rng.random() < kill_probability:
                killed += self.kill_region(region)
            elif rng.random() < revive_probability:
                revived += self.revive_region(region)
        return {"killed": killed, "revived": revived}
