"""The VINESTALK client algorithm (§IV-A, §V).

Clients bridge the physical world and the VSA tracking structure:

* on a ``move`` input (evader entered the client's region) they send a
  ``grow`` to their level-0 cluster;
* on a ``left`` input they send a ``shrink``;
* on a ``find`` input (an external query for the evader's region) they
  send a ``find`` to their level-0 cluster;
* on receiving a ``found`` broadcast, a client whose last evader input
  indicated the evader is present performs the ``found`` output.

The grow/shrink messages carry the level-0 cluster itself as ``cid`` so
that the level-0 process ends up with the self-pointer ``c0.c = c0``
required of a tracking path terminus.

Multi-object service (DESIGN.md §9): every input carries an
``object_id`` (default 0 — the paper's single evader); presence is
tracked per object, and a ``found`` broadcast is answered only by a
client whose region currently hosts *that* object.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set

from ..geometry.regions import RegionId
from ..hierarchy.hierarchy import ClusterHierarchy
from ..vsa.client import Client
from .messages import Find, Found, Grow, Shrink, TrackerMessage

# found output observer: (find_id, region, client_id).
FoundObserver = Callable[[int, RegionId, int], None]


class TrackingClient(Client):
    """Client automaton running the VINESTALK client algorithm."""

    #: Class-level fallback so clients pickled before the multi-object
    #: service existed unpickle into working single-object clients.
    _objects_here: Optional[Set[int]] = None

    def __init__(self, node_id: int, hierarchy: ClusterHierarchy, cgcast) -> None:
        super().__init__(node_id, hierarchy, cgcast)
        self.evader_here = False  # lane-0 presence (legacy name)
        self._objects_here = set()  # extra object ids present here
        self.finds_issued = 0
        self.founds_output = 0
        # Static deployments pin a client to one region; a restarted
        # client immediately receives a fresh GPS fix for it (the GPS
        # tells every client its region on entering the system).
        self.home_region: Optional[RegionId] = None
        self._found_observers: List[FoundObserver] = []

    def reset_state(self) -> None:
        super().reset_state()
        self.evader_here = False
        if self._objects_here:
            self._objects_here.clear()

    def on_restarted(self) -> None:
        if self.home_region is not None:
            self.region = self.home_region

    def on_found(self, observer: FoundObserver) -> None:
        """Observe every ``found`` output this client performs."""
        self._found_observers.append(observer)

    def object_present(self, object_id: int) -> bool:
        """Whether ``object_id`` is currently in this client's region."""
        if object_id == 0:
            return self.evader_here
        objects = self._objects_here
        return bool(objects) and object_id in objects

    def _set_present(self, object_id: int, present: bool) -> None:
        if object_id == 0:
            self.evader_here = present
            return
        objects = self._objects_here
        if objects is None:
            objects = set()
            self._objects_here = objects
        if present:
            objects.add(object_id)
        else:
            objects.discard(object_id)

    # ------------------------------------------------------------------
    # Evader inputs from the augmented GPS (§III)
    # ------------------------------------------------------------------
    def input_move(self, region: RegionId, object_id: int = 0) -> None:
        """Tracked object ``object_id`` just arrived in this region."""
        if self.region is None or region != self.region:
            return  # stale notification (client moved away)
        self._set_present(object_id, True)
        self.ctob_send(Grow(cid=self.local_cluster(), object_id=object_id))

    def input_left(self, region: RegionId, object_id: int = 0) -> None:
        """Tracked object ``object_id`` just left this region."""
        if self.region is None or region != self.region:
            return
        self._set_present(object_id, False)
        self.ctob_send(Shrink(cid=self.local_cluster(), object_id=object_id))

    # ------------------------------------------------------------------
    # Find requests from the environment (§V)
    # ------------------------------------------------------------------
    def input_find(self, find_id: int, object_id: int = 0) -> None:
        """An external query: where is object ``object_id``?"""
        self.finds_issued += 1
        self.ctob_send(
            Find(cid=self.local_cluster(), find_id=find_id, object_id=object_id)
        )

    # ------------------------------------------------------------------
    # Found broadcasts from the local VSA
    # ------------------------------------------------------------------
    def on_message(self, message: TrackerMessage) -> None:
        if isinstance(message, Found) and self.object_present(
            getattr(message, "object_id", 0)
        ):
            self.founds_output += 1
            self.trace("found-output", message.find_id)
            for observer in self._found_observers:
                observer(message.find_id, self.region, self.node_id)
