"""Consistent-state checker (§IV-C).

A state is *consistent* when (1) exactly one tracking path exists,
(2) every off-path process has ``c = p = ⊥``, (3)/(4) the secondary
pointers are exactly characterised by their iff conditions, and
(5) no grow/shrink-family messages are in transit or queued.
:func:`check_consistent` returns the list of violations (empty means
consistent), which both the test-suite and the Theorem 4.8 harness use.
"""

from __future__ import annotations

from typing import List

from ..geometry.regions import RegionId
from ..hierarchy.hierarchy import ClusterHierarchy
from .path import check_tracking_path
from .state import SystemSnapshot


def check_consistent(
    snapshot: SystemSnapshot,
    hierarchy: ClusterHierarchy,
    evader_region: RegionId,
) -> List[str]:
    """All violations of the consistent-state conditions."""
    problems: List[str] = []

    # Condition 1: one valid tracking path.
    path, path_problems = check_tracking_path(snapshot, hierarchy, evader_region)
    problems.extend(path_problems)
    on_path = set(path or [])

    # Condition 2: off-path processes have c = p = ⊥.
    for cid, ps in snapshot.pointers.items():
        if cid in on_path:
            continue
        if ps.c is not None:
            problems.append(f"off-path {cid} has c={ps.c}")
        if ps.p is not None:
            problems.append(f"off-path {cid} has p={ps.p}")

    # Conditions 3 and 4: secondary pointers are exactly the iff sets.
    for cid, ps in snapshot.pointers.items():
        up_targets = [
            cn
            for cn in hierarchy.nbrs(cid)
            if snapshot.pointers[cn].p == hierarchy.parent(cn)
            and snapshot.pointers[cn].p is not None
        ]
        down_targets = [
            cn
            for cn in hierarchy.nbrs(cid)
            if snapshot.pointers[cn].p is not None
            and snapshot.pointers[cn].p in hierarchy.nbrs(cn)
        ]
        if len(up_targets) > 1:
            problems.append(f"{cid} has multiple nbrptup candidates {up_targets}")
        if len(down_targets) > 1:
            problems.append(f"{cid} has multiple nbrptdown candidates {down_targets}")
        expected_up = up_targets[0] if len(up_targets) == 1 else None
        expected_down = down_targets[0] if len(down_targets) == 1 else None
        if ps.nbrptup != expected_up:
            problems.append(
                f"{cid}.nbrptup={ps.nbrptup}, consistency requires {expected_up}"
            )
        if ps.nbrptdown != expected_down:
            problems.append(
                f"{cid}.nbrptdown={ps.nbrptdown}, consistency requires {expected_down}"
            )

    # Condition 5: no tracking messages in transit or queued.
    for msg in snapshot.in_transit:
        problems.append(f"message in transit: {msg.payload.kind} -> {msg.dest}")

    return problems


def is_consistent(
    snapshot: SystemSnapshot,
    hierarchy: ClusterHierarchy,
    evader_region: RegionId,
) -> bool:
    return not check_consistent(snapshot, hierarchy, evader_region)
