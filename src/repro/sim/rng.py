"""Seeded random-number streams.

Each simulation component draws from its own named stream derived from a
single root seed, so adding randomness to one component never perturbs
another component's draws — runs stay comparable across configurations.
"""

from __future__ import annotations

import random
import zlib
from typing import Optional, Sequence, TypeVar

T = TypeVar("T")


class RngRegistry:
    """Factory of independent, reproducible :class:`random.Random` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        if name not in self._streams:
            mix = zlib.crc32(name.encode("utf-8"))
            self._streams[name] = random.Random((self.seed << 32) ^ mix)
        return self._streams[name]

    def names(self) -> list[str]:
        return sorted(self._streams)


def choice_excluding(
    rng: random.Random, options: Sequence[T], excluded: Optional[T]
) -> T:
    """Uniformly pick from ``options`` avoiding ``excluded`` when possible."""
    if not options:
        raise ValueError("empty options")
    pool = [o for o in options if o != excluded]
    if not pool:
        pool = list(options)
    return rng.choice(pool)
