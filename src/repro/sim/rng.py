"""Seeded random-number streams.

Each simulation component draws from its own named stream derived from a
single root seed, so adding randomness to one component never perturbs
another component's draws — runs stay comparable across configurations.
"""

from __future__ import annotations

import random
import zlib
from typing import Optional, Sequence, TypeVar

T = TypeVar("T")


class RngRegistry:
    """Factory of independent, reproducible :class:`random.Random` streams.

    A registry also carries a *fork path* — a tuple of fork indices
    mixed into every stream's seed derivation.  A freshly constructed
    registry has an empty fork path and derives seeds exactly as it
    always did; :meth:`fork` extends the path, deterministically
    re-deriving every stream so N restored copies of one snapshot can
    diverge reproducibly (fork ``k`` always yields the same streams for
    the same root seed and path).
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._fork_path: tuple = ()
        self._streams: dict[str, random.Random] = {}

    @property
    def fork_path(self) -> tuple:
        """Fork indices applied so far (empty for an unforked registry)."""
        return self._fork_path

    def _derive(self, name: str) -> int:
        """Seed for stream ``name`` under the current fork path.

        With an empty fork path this is the historical derivation
        ``(seed << 32) ^ crc32(name)`` bit for bit, so existing goldens
        are untouched.
        """
        mix = zlib.crc32(name.encode("utf-8"))
        derived = (self.seed << 32) ^ mix
        for index in self._fork_path:
            derived = derived * 1_000_003 ^ zlib.crc32(
                repr(index).encode("utf-8")
            )
        return derived

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically."""
        if name not in self._streams:
            self._streams[name] = random.Random(self._derive(name))
        return self._streams[name]

    def names(self) -> list[str]:
        return sorted(self._streams)

    # ------------------------------------------------------------------
    # Snapshot / restore / fork (repro.ckpt engine hook)
    # ------------------------------------------------------------------
    def state(self) -> dict:
        """Capture the registry — root seed, fork path and the exact
        mid-sequence position of every stream — as plain picklable data."""
        return {
            "seed": self.seed,
            "fork_path": self._fork_path,
            "streams": {
                name: rng.getstate() for name, rng in self._streams.items()
            },
        }

    def restore(self, state: dict) -> None:
        """Reinstate a :meth:`state` capture.

        Streams absent from the capture are dropped; restored streams
        continue their sequences from the captured position, so a
        restore-then-draw matches the original draw bit for bit.
        """
        self.seed = state["seed"]
        self._fork_path = tuple(state["fork_path"])
        self._streams = {}
        for name, rng_state in state["streams"].items():
            rng = random.Random()
            rng.setstate(rng_state)
            self._streams[name] = rng

    def fork(self, index: int) -> "RngRegistry":
        """Extend the fork path by ``index`` and re-derive every stream.

        All existing streams restart from their forked seeds (the
        mid-sequence position is deliberately discarded — a fork is a
        new, divergent continuation, not a resume), and streams created
        later derive from the same extended path.  Returns ``self``.
        """
        self._fork_path = self._fork_path + (int(index),)
        for name, rng in self._streams.items():
            rng.seed(self._derive(name))
        return self


def choice_excluding(
    rng: random.Random, options: Sequence[T], excluded: Optional[T]
) -> T:
    """Uniformly pick from ``options`` avoiding ``excluded`` when possible."""
    if not options:
        raise ValueError("empty options")
    pool = [o for o in options if o != excluded]
    if not pool:
        pool = list(options)
    return rng.choice(pool)
