"""Discrete-event simulation engine.

The :class:`Simulator` advances a virtual clock through an
:class:`~repro.sim.event_queue.EventQueue`.  All timing in the
reproduction (message delays, VSA timers, mobility dwell times) is
expressed as events on a single simulator, which keeps executions fully
deterministic and replayable.

Typical use::

    sim = Simulator()
    sim.call_at(3.0, lambda: print("hello at t=3"))
    sim.run_until(10.0)
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .event_queue import Event, EventQueue
from .trace import TraceLog


class SimulationError(RuntimeError):
    """Raised for illegal scheduling requests (e.g., scheduling in the past)."""


class Simulator:
    """Single-clock discrete-event simulator.

    Attributes:
        now: Current simulation time.  Starts at 0.0.
        trace: Structured trace log shared by all simulation components.
    """

    def __init__(self, trace: Optional[TraceLog] = None) -> None:
        self.now: float = 0.0
        self.trace: TraceLog = trace if trace is not None else TraceLog()
        self._queue = EventQueue()
        self._events_fired = 0
        self._running = False
        self._stop_requested = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(
        self,
        time: float,
        fn: Callable[[], Any],
        priority: int = 0,
        tag: Optional[str] = None,
    ) -> Event:
        """Schedule ``fn`` at absolute time ``time``.

        Raises:
            SimulationError: if ``time`` lies in the past.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self.now} (tag={tag!r})"
            )
        return self._queue.push(time, fn, priority=priority, tag=tag)

    def call_after(
        self,
        delay: float,
        fn: Callable[[], Any],
        priority: int = 0,
        tag: Optional[str] = None,
    ) -> Event:
        """Schedule ``fn`` after a non-negative ``delay`` from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} (tag={tag!r})")
        return self._queue.push(self.now + delay, fn, priority=priority, tag=tag)

    def cancel(self, event: Event) -> None:
        self._queue.cancel(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        return len(self._queue)

    @property
    def events_fired(self) -> int:
        return self._events_fired

    def stop(self) -> None:
        """Request that the currently running loop stop after this event."""
        self._stop_requested = True

    def step(self) -> bool:
        """Fire the single earliest event.  Returns False if none remain."""
        if not self._queue:
            return False
        event = self._queue.pop()
        if event.time < self.now:  # pragma: no cover - defensive
            raise SimulationError("event queue produced an event in the past")
        self.now = event.time
        self._events_fired += 1
        event.fn()
        return True

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events`` fire).

        Returns:
            Number of events fired by this call.
        """
        return self._loop(until=None, max_events=max_events)

    def run_until(self, until: float, max_events: Optional[int] = None) -> int:
        """Run events with ``time <= until`` and advance the clock to ``until``.

        Returns:
            Number of events fired by this call.
        """
        fired = self._loop(until=until, max_events=max_events)
        if not self._stop_requested and self.now < until:
            self.now = until
        return fired

    def _loop(self, until: Optional[float], max_events: Optional[int]) -> int:
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        self._stop_requested = False
        fired = 0
        try:
            while self._queue:
                if max_events is not None and fired >= max_events:
                    break
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
                fired += 1
                if self._stop_requested:
                    break
        finally:
            self._running = False
        return fired
