"""Discrete-event simulation engine.

The :class:`Simulator` advances a virtual clock through an
:class:`~repro.sim.event_queue.EventQueue`.  All timing in the
reproduction (message delays, VSA timers, mobility dwell times) is
expressed as events on a single simulator, which keeps executions fully
deterministic and replayable.

Typical use::

    sim = Simulator()
    sim.call_at(3.0, lambda: print("hello at t=3"))
    sim.run_until(10.0)
"""

from __future__ import annotations

import gc
from typing import Any, Callable, List, Optional

from ..obs._state import OBS as _OBS
from ..obs.spans import Span
from .event_queue import Event, EventQueue
from .trace import TraceLog

#: Process-wide count of events fired by every Simulator instance.  The
#: parallel sweep runner samples this around a job to compute events/sec
#: (each worker process has its own counter, so jobs never interfere).
_EVENTS_FIRED_TOTAL = 0


def events_fired_total() -> int:
    """Total events fired by all simulators in this process."""
    return _EVENTS_FIRED_TOTAL


class SimulationError(RuntimeError):
    """Raised for illegal scheduling requests (e.g., scheduling in the past)."""


class Simulator:
    """Single-clock discrete-event simulator.

    Attributes:
        now: Current simulation time.  Starts at 0.0.
        trace: Structured trace log shared by all simulation components.
    """

    def __init__(self, trace: Optional[TraceLog] = None) -> None:
        self.now: float = 0.0
        self.trace: TraceLog = trace if trace is not None else TraceLog()
        self._queue = EventQueue()
        self._events_fired = 0
        self._running = False
        self._stop_requested = False
        # After-event hooks (obs conformance sampling).  None — the
        # overwhelmingly common case — costs one identity check per
        # fired event on the fast lane.
        self._after_event: Optional[List[Callable[[], None]]] = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(
        self,
        time: float,
        fn: Callable[[], Any],
        priority: int = 0,
        tag: Optional[str] = None,
    ) -> Event:
        """Schedule ``fn`` at absolute time ``time``.

        Raises:
            SimulationError: if ``time`` lies in the past.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self.now} (tag={tag!r})"
            )
        return self._queue.push(time, fn, priority=priority, tag=tag)

    def call_after(
        self,
        delay: float,
        fn: Callable[[], Any],
        priority: int = 0,
        tag: Optional[str] = None,
    ) -> Event:
        """Schedule ``fn`` after a non-negative ``delay`` from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} (tag={tag!r})")
        return self._queue.push(self.now + delay, fn, priority=priority, tag=tag)

    def cancel(self, event: Event) -> None:
        self._queue.cancel(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        return len(self._queue)

    @property
    def events_fired(self) -> int:
        return self._events_fired

    def stop(self) -> None:
        """Request that the currently running loop stop after this event."""
        self._stop_requested = True

    def add_after_event(self, fn: Callable[[], None]) -> Callable[[], None]:
        """Call ``fn()`` after every fired event (sampling hooks).

        The running loop binds the hook list at entry, so a hook
        installed mid-run takes effect at the next ``run``/``step``
        call.  Hooks must not perturb the simulation (no scheduling, no
        RNG draws) — they are for observation only.
        """
        if self._after_event is None:
            self._after_event = []
        self._after_event.append(fn)
        return fn

    def remove_after_event(self, fn: Callable[[], None]) -> None:
        """Remove an after-event hook (no-op when absent)."""
        hooks = self._after_event
        if hooks is None:
            return
        try:
            hooks.remove(fn)
        except ValueError:
            return
        if not hooks:
            self._after_event = None

    def step(self, until: Optional[float] = None) -> bool:
        """Fire the single earliest event.  Returns False if none remain.

        With ``until`` given, an event beyond that time is left in the
        queue and False is returned — the bounded single-step the replay
        recorder uses to interleave per-event observation with normal
        execution.
        """
        global _EVENTS_FIRED_TOTAL
        event = self._queue.pop_next_before(until)
        if event is None:
            return False
        if event.time < self.now:  # pragma: no cover - defensive
            raise SimulationError("event queue produced an event in the past")
        self.now = event.time
        self._events_fired += 1
        _EVENTS_FIRED_TOTAL += 1
        event.fn()
        hooks = self._after_event
        if hooks is not None:
            for hook in hooks:
                hook()
        return True

    # ------------------------------------------------------------------
    # Snapshot / restore (repro.ckpt engine hook)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Capture the simulator's own state as plain data.

        Covers the clock, the fired-event counter and the full event
        queue (via :meth:`EventQueue.snapshot`).  Callbacks are held by
        reference — making the capture portable across processes is the
        :mod:`repro.ckpt` codec's job.  Refuses to run mid-event: a
        snapshot is only meaningful on the inter-event boundary.

        Raises:
            SimulationError: when called from inside a running loop.
        """
        if self._running:
            raise SimulationError("cannot snapshot while the loop is running")
        return {
            "now": self.now,
            "events_fired": self._events_fired,
            "queue": self._queue.snapshot(),
        }

    def restore(self, state: dict) -> None:
        """Reinstate a :meth:`snapshot` capture onto this simulator.

        Raises:
            SimulationError: when called from inside a running loop.
        """
        if self._running:
            raise SimulationError("cannot restore while the loop is running")
        self.now = state["now"]
        self._events_fired = state["events_fired"]
        self._stop_requested = False
        self._queue.restore(state["queue"])

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events`` fire).

        Returns:
            Number of events fired by this call.
        """
        return self._loop(until=None, max_events=max_events)

    def run_until(self, until: float, max_events: Optional[int] = None) -> int:
        """Run events with ``time <= until`` and advance the clock to ``until``.

        Returns:
            Number of events fired by this call.
        """
        fired = self._loop(until=until, max_events=max_events)
        if not self._stop_requested and self.now < until:
            self.now = until
        return fired

    def run_window(self, until: float) -> int:
        """Run events with ``time < until`` (strictly) and advance to ``until``.

        The bounded window step of the sharded PDES driver: with
        conservative lookahead δ, a message sent during the window
        ``[now, until)`` is delivered no earlier than ``until``, so an
        event at exactly the barrier may be a cross-shard injection and
        must wait for the exchange.  After the call the clock sits at
        the barrier, making ``call_at(until, ...)`` legal for injected
        messages.

        Returns:
            Number of events fired by this call.
        """
        fired = self._loop(until=until, max_events=None, strict=True)
        if not self._stop_requested and self.now < until:
            self.now = until
        return fired

    def next_event_time(self) -> Optional[float]:
        """Time of the earliest pending event, or ``None`` when drained."""
        return self._queue.peek_time()

    def _loop(
        self,
        until: Optional[float],
        max_events: Optional[int],
        strict: bool = False,
    ) -> int:
        """Fast-lane event loop.

        Each iteration does a single fused pop (one cancelled-entry sweep
        per fired event, versus the ``peek_time()`` + ``pop()`` pair that
        each re-scanned the heap head).  Hot attribute loads are bound to
        locals; the firing order is bit-for-bit the ``(time, priority,
        seq)`` order of the queue, exactly as before.
        """
        global _EVENTS_FIRED_TOTAL
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        self._stop_requested = False
        fired = 0
        pop_next_before = self._queue.pop_next_before
        hooks = self._after_event
        # The loop allocates heavily (messages, closures, trace lines)
        # but creates no reference cycles, so the generational collector
        # finds nothing — yet its gen-2 passes scan the *entire* live
        # graph, which grows with the tracked-object count M.  That is
        # an O(M) tax per batch of allocations and the dominant
        # M-dependent per-event cost at M=10k (DESIGN.md §9.5).  Pause
        # automatic collection for the loop's duration; refcounting
        # still frees everything the loop drops.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        span = None
        if _OBS.spans_enabled:
            # One span per loop call (not per event) charges the loop's
            # self time to the "events" phase; geocast/lookahead work
            # inside event handlers charges its own phase and is
            # subtracted via the span's child-time accounting.
            span = Span("sim.run", "events", _OBS.collector)
            span.__enter__()
        try:
            while True:
                if max_events is not None and fired >= max_events:
                    break
                event = pop_next_before(until, strict)
                if event is None:
                    break
                if event.time < self.now:  # pragma: no cover - defensive
                    raise SimulationError(
                        "event queue produced an event in the past"
                    )
                self.now = event.time
                self._events_fired += 1
                fired += 1
                event.fn()
                if hooks is not None:
                    for hook in hooks:
                        hook()
                if self._stop_requested:
                    break
        finally:
            self._running = False
            _EVENTS_FIRED_TOTAL += fired
            if gc_was_enabled:
                gc.enable()
            if span is not None:
                span.__exit__(None, None, None)
        return fired
