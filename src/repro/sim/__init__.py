"""Discrete-event simulation substrate (engine, queue, RNG, trace, metrics)."""

from .engine import SimulationError, Simulator
from .event_queue import Event, EventQueue
from .metrics import Counter, MetricsRegistry, Series, summarize
from .rng import RngRegistry, choice_excluding
from .trace import TraceLog, TraceRecord

__all__ = [
    "Counter",
    "Event",
    "EventQueue",
    "MetricsRegistry",
    "RngRegistry",
    "Series",
    "SimulationError",
    "Simulator",
    "TraceLog",
    "TraceRecord",
    "choice_excluding",
    "summarize",
]
