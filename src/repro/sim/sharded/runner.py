"""High-level sharded runs: reference path, sweep runner, fault plans.

:func:`run_sharded_walk` is the one-call entry point used by the CLI,
the benchmarks, the CI smoke job and the SweepRunner registry
(``job("sharded_walk", ...)``): build a scripted walk workload, run it
at K shards, return a picklable result carrying the trace
fingerprints.

:func:`run_reference_walk` runs the *same* workload on the plain
single-loop :class:`~repro.sim.engine.Simulator` (no windows, no
barrier logic) and fingerprints it identically — the K=1 bit-identity
golden compares its exact fingerprint against the sharded K=1 run.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, Optional, Tuple

from ...faults.plan import (
    CHANNEL_BOTH,
    FaultPlan,
    MessageDuplication,
    MessageJitter,
    MessageLoss,
)
from .context import ShardContext
from .core import ShardedSimulator, _tiling_for, canonical_fingerprint
from .plan import strip_plan
from .workload import make_walk_workload


@dataclass(frozen=True)
class ShardedWalkResult:
    """Picklable result of one (reference or sharded) walk run."""

    shards: int
    backend: str
    events: int
    windows: int
    messages_sent: int
    moves_observed: int
    finds_issued: int
    finds_completed: int
    cross_shard_messages: int
    canonical_fingerprint: str
    exact_fingerprint: Optional[str]
    move_work: float
    find_work: float
    now: float
    wall_s: float
    barrier_wait_s: float
    fault_events: Optional[Dict[str, int]]


def walk_fault_plan(
    loss_rate: float = 0.0,
    duplication_rate: float = 0.0,
    jitter_rate: float = 0.0,
    jitter_max: float = 0.5,
    horizon: Optional[float] = None,
) -> Optional[FaultPlan]:
    """A message-perturbation plan, or ``None`` when all rates are 0."""
    rules: Tuple = ()
    if loss_rate > 0.0:
        rules += (MessageLoss(rate=loss_rate, channel=CHANNEL_BOTH),)
    if duplication_rate > 0.0:
        rules += (MessageDuplication(rate=duplication_rate, channel=CHANNEL_BOTH),)
    if jitter_rate > 0.0:
        rules += (
            MessageJitter(
                rate=jitter_rate, channel=CHANNEL_BOTH, max_extra=jitter_max
            ),
        )
    if not rules:
        return None
    return FaultPlan(rules=rules, horizon=horizon)


def _walk_config(
    r: int,
    max_level: int,
    seed: int,
    shards: int,
    delta: float,
    e: float,
    fault_plan: Optional[FaultPlan],
):
    from ...scenario import ScenarioConfig

    return ScenarioConfig(
        r=r,
        max_level=max_level,
        delta=delta,
        e=e,
        seed=seed,
        shards=shards,
        fault_plan=fault_plan,
        # Message-fault draws must not depend on global dispatch order
        # for cross-K fingerprints to agree; K=1 uses the same mode so
        # comparisons stay apples-to-apples.
        stable_fault_draws=fault_plan is not None,
    )


def run_sharded_walk(
    r: int = 2,
    max_level: int = 3,
    shards: int = 2,
    n_moves: int = 8,
    n_finds: int = 4,
    seed: int = 11,
    delta: float = 1.0,
    e: float = 0.5,
    dwell: float = 40.0,
    backend: str = "serial",
    loss_rate: float = 0.0,
    duplication_rate: float = 0.0,
    jitter_rate: float = 0.0,
) -> ShardedWalkResult:
    """Run the scripted walk workload at ``shards`` shards."""
    fault_plan = walk_fault_plan(loss_rate, duplication_rate, jitter_rate)
    config = _walk_config(r, max_level, seed, shards, delta, e, fault_plan)
    workload = make_walk_workload(
        _tiling_for(config), n_moves, n_finds, seed, dwell=dwell
    )
    result = ShardedSimulator(config, workload, backend=backend).run()
    return ShardedWalkResult(
        shards=result.shards,
        backend=result.backend,
        events=result.events,
        windows=result.windows,
        messages_sent=result.messages_sent,
        moves_observed=result.moves_observed,
        finds_issued=result.finds_issued,
        finds_completed=result.finds_completed,
        cross_shard_messages=result.cross_shard_messages,
        canonical_fingerprint=result.canonical_fingerprint,
        exact_fingerprint=result.exact_fingerprint,
        move_work=result.move_work,
        find_work=result.find_work,
        now=result.now,
        wall_s=result.wall_s,
        barrier_wait_s=result.barrier_wait_s,
        fault_events=result.fault_events,
    )


def run_reference_walk(
    r: int = 2,
    max_level: int = 3,
    n_moves: int = 8,
    n_finds: int = 4,
    seed: int = 11,
    delta: float = 1.0,
    e: float = 0.5,
    dwell: float = 40.0,
    loss_rate: float = 0.0,
    duplication_rate: float = 0.0,
    jitter_rate: float = 0.0,
) -> ShardedWalkResult:
    """The same workload on the plain single-loop engine (no windows)."""
    fault_plan = walk_fault_plan(loss_rate, duplication_rate, jitter_rate)
    config = _walk_config(r, max_level, seed, 1, delta, e, fault_plan)
    workload = make_walk_workload(
        _tiling_for(config), n_moves, n_finds, seed, dwell=dwell
    )
    plan = strip_plan(_tiling_for(config), 1)
    wall0 = perf_counter()
    # A K=1 context installs no hooks; driving it with a plain
    # ``sim.run()`` is exactly the pre-sharding engine path.
    context = ShardContext(config, plan, 0, workload)
    context.sim.run()
    wall = perf_counter() - wall0
    report = context.report()
    return ShardedWalkResult(
        shards=1,
        backend="reference",
        events=report["events"],
        windows=0,
        messages_sent=report["messages_sent"],
        moves_observed=report["moves_observed"],
        finds_issued=len(report["finds"]),
        finds_completed=sum(
            1 for f in report["finds"].values() if f["completed"]
        ),
        cross_shard_messages=0,
        canonical_fingerprint=canonical_fingerprint(report["send_lines"]),
        exact_fingerprint=f"{report['exact_crc']:08x}",
        move_work=report["move_work"],
        find_work=report["find_work"],
        now=report["now"],
        wall_s=wall,
        barrier_wait_s=0.0,
        fault_events=report["fault_stats"],
    )
