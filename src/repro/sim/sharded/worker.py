"""Process backend: one forked worker per shard, stepped over pipes.

Protocol (parent → worker / worker → parent):

* on start: worker builds its :class:`~repro.sim.sharded.context.
  ShardContext` (replica construction hits the per-process topo cache)
  and replies ``("ready", next_event_time)``;
* ``("step", barrier, inbox)`` → inject the inbox, run the window,
  reply ``("stepped", outbox, next_event_time)``;
* ``("finish",)`` → reply ``("report", report_dict)`` and exit.

The parent broadcasts ``step`` to every worker before collecting any
reply, so the K windows compute concurrently; determinism needs no
cooperation from the OS scheduler because the parent re-sorts the
gathered outboxes canonically (see :mod:`repro.sim.sharded.core`).

Workers fork when the platform allows it (Linux: inherits the warm
parent topo cache for free); otherwise they spawn, which only requires
what the protocol already guarantees — picklable configs, plans and
workloads.
"""

from __future__ import annotations

import multiprocessing
import traceback
from typing import List, Optional

from .context import RemoteMessage, ShardContext
from .core import ShardedRunError
from .plan import ShardPlan
from .workload import ScriptedWorkload


def shard_worker_main(conn, config, plan: ShardPlan, shard_id: int,
                      workload: ScriptedWorkload) -> None:
    """Worker entry point: build the shard replica and serve steps."""
    try:
        ctx = ShardContext(config, plan, shard_id, workload)
        conn.send(("ready", ctx.next_event_time()))
        while True:
            command = conn.recv()
            op = command[0]
            if op == "step":
                _, barrier, inbox = command
                for message in inbox:
                    ctx.inject(message)
                ctx.run_window(barrier)
                conn.send(("stepped", ctx.drain_outbox(), ctx.next_event_time()))
            elif op == "finish":
                conn.send(("report", ctx.report()))
                return
            else:
                conn.send(("error", f"unknown command {op!r}", ""))
                return
    except EOFError:  # parent died; exit quietly
        return
    except Exception as exc:  # pragma: no cover - surfaced in the parent
        try:
            conn.send(("error", repr(exc), traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context()


class ProcessTransport:
    """Parent-side driver of K shard workers."""

    def __init__(self, config, plan: ShardPlan, workload: ScriptedWorkload) -> None:
        ctx = _mp_context()
        self.pipes = []
        self.procs = []
        for shard in range(plan.k):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=shard_worker_main,
                args=(child_conn, config, plan, shard, workload),
                daemon=True,
                name=f"repro-shard-{shard}",
            )
            proc.start()
            child_conn.close()
            self.pipes.append(parent_conn)
            self.procs.append(proc)

    def _recv(self, shard: int):
        try:
            message = self.pipes[shard].recv()
        except EOFError as exc:
            raise ShardedRunError(
                f"shard {shard} worker died without replying"
            ) from exc
        if message[0] == "error":
            raise ShardedRunError(
                f"shard {shard} worker failed: {message[1]}\n{message[2]}"
            )
        return message

    def start(self) -> List[Optional[float]]:
        return [self._recv(shard)[1] for shard in range(len(self.pipes))]

    def step_all(self, barrier: float, inboxes: List[List[RemoteMessage]]):
        for pipe, inbox in zip(self.pipes, inboxes):
            pipe.send(("step", barrier, inbox))
        outboxes: List[List[RemoteMessage]] = []
        next_times: List[Optional[float]] = []
        for shard in range(len(self.pipes)):
            message = self._recv(shard)
            outboxes.append(message[1])
            next_times.append(message[2])
        return outboxes, next_times

    def finish(self) -> List[dict]:
        for pipe in self.pipes:
            pipe.send(("finish",))
        reports = [self._recv(shard)[1] for shard in range(len(self.pipes))]
        for proc in self.procs:
            proc.join(timeout=10.0)
        return reports

    def close(self) -> None:
        for pipe in self.pipes:
            try:
                pipe.close()
            except OSError:  # pragma: no cover - defensive
                pass
        for proc in self.procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
