"""Scripted workloads: picklable timed drive for sharded execution.

The experiment harness normally drives a system imperatively (call
``evader.step()``, run to quiescence, repeat).  That style cannot cross
process boundaries, and — more fundamentally — sharded execution needs
every shard replica to apply the *same* external stimuli in the *same*
order.  A :class:`ScriptedWorkload` is the bridge: a frozen list of
timed actions, fully determined by its generator's seed, that
:func:`schedule_workload` turns into ordinary simulator events.

Replication rule: evader actions are scheduled in **every** shard (the
evader is replicated world state; each replica moves identically),
while ``IssueFind`` actions are scheduled only in the shard owning the
origin region (the find's first message originates at that region's
client).  Find ids are pre-assigned in script order, so the per-shard
coordinators allocate the same global ids the serial run would.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Union

from ...geometry.regions import RegionId


@dataclass(frozen=True)
class EvaderEnter:
    """Place object ``object_id``'s evader at ``region`` (first ``move``)."""

    time: float
    region: RegionId
    object_id: int = 0


@dataclass(frozen=True)
class EvaderStep:
    """Move object ``object_id``'s evader to neighboring ``target``."""

    time: float
    target: RegionId
    object_id: int = 0


@dataclass(frozen=True)
class IssueFind:
    """Issue a find at ``origin``'s client with a pre-assigned id.

    ``object_id`` selects which tracked object the query targets;
    ``deadline`` is an optional latency budget recorded on the find
    (service-level miss-rate accounting — it does not affect the
    protocol).
    """

    time: float
    origin: RegionId
    find_id: int
    object_id: int = 0
    deadline: Optional[float] = None


WorkloadAction = Union[EvaderEnter, EvaderStep, IssueFind]


@dataclass(frozen=True)
class ScriptedWorkload:
    """A time-ordered, picklable action script.

    Attributes:
        actions: Actions sorted by time (stable: equal-time actions
            keep generation order, which fixes the same-time tiebreak
            in every shard).
        horizon: Time of the last scripted action.
    """

    actions: Tuple[WorkloadAction, ...]
    horizon: float

    def events(self, seed: int = 0) -> Tuple[WorkloadAction, ...]:
        """Workload protocol: a script is its own (seed-free) stream."""
        return self.actions

    def find_count(self) -> int:
        return sum(1 for a in self.actions if isinstance(a, IssueFind))

    def move_count(self) -> int:
        return sum(1 for a in self.actions if isinstance(a, EvaderStep))

    def object_ids(self) -> Tuple[int, ...]:
        """Distinct tracked-object ids this script drives, ascending."""
        return tuple(sorted({getattr(a, "object_id", 0) for a in self.actions}))


def make_walk_workload(
    tiling,
    n_moves: int,
    n_finds: int,
    seed: int,
    dwell: float = 40.0,
    start: Optional[RegionId] = None,
) -> ScriptedWorkload:
    """A random neighbor walk with interleaved find queries.

    The evader enters at ``start`` (default: the center region) at
    ``t=0`` and steps to a uniformly drawn neighbor every ``dwell``
    time units.  ``n_finds`` finds are issued from uniformly drawn
    origins at mid-dwell offsets, cycling over the walk — a large
    ``n_finds`` therefore yields *concurrent* find storms, the regime
    where sharded execution has work to parallelize.

    Fully determined by ``(tiling, n_moves, n_finds, seed, dwell,
    start)``.
    """
    rng = random.Random(seed)
    regions = list(tiling.regions())
    if start is None:
        start = regions[len(regions) // 2]
    actions: list = [EvaderEnter(0.0, start)]
    current = start
    for i in range(1, n_moves + 1):
        current = rng.choice(list(tiling.neighbors(current)))
        actions.append(EvaderStep(float(i) * dwell, current))
    slots = max(1, n_moves)
    for j in range(n_finds):
        # Every find gets a globally unique issue time: the j/1024
        # stagger keeps two find chains (whose hop delays are multiples
        # of 0.5) from ever colliding at the same cluster at the same
        # instant, for any pair with |j1 - j2| < 512.  Same-instant
        # causally-independent collisions are ordered by global
        # scheduling order in the serial engine — an order a
        # partitioned run cannot reproduce (see DESIGN.md §8,
        # Limitations) — so the generator avoids manufacturing them
        # while still keeping many finds in flight concurrently.
        at = (float(j % slots) + 0.5) * dwell + float(j) / 1024.0
        origin = rng.choice(regions)
        actions.append(IssueFind(at, origin, j + 1))
    actions.sort(key=lambda a: a.time)  # stable: preserves script order
    horizon = max(a.time for a in actions)
    return ScriptedWorkload(actions=tuple(actions), horizon=horizon)


def schedule_workload(
    system,
    workload: ScriptedWorkload,
    owns: Optional[Callable[[RegionId], bool]] = None,
) -> int:
    """Schedule ``workload``'s actions as events on ``system``'s simulator.

    Args:
        system: A built VineStalk-like system (fresh: no evader yet).
        workload: The script to apply.
        owns: Region-ownership predicate.  Evader actions are always
            scheduled (replicated state); ``IssueFind`` actions only
            when their origin is owned.  ``None`` schedules everything
            — the serial reference behavior.

    Returns:
        Number of events scheduled.
    """
    from ...mobility.evader import Evader
    from ...mobility.models import RandomNeighborWalk

    sim = system.sim
    tiling = system.hierarchy.tiling

    def evader_of(object_id: int):
        finder = getattr(system, "object_evader", None)
        if finder is not None:
            return finder(object_id)
        return system.evader if object_id == 0 else None

    def ensure_evader(region: RegionId, object_id: int = 0) -> None:
        evader = evader_of(object_id)
        if evader is None:
            evader = Evader(
                sim,
                tiling,
                RandomNeighborWalk(start=region),
                dwell=1e18,  # scripted: the dwell timer never runs
                rng=random.Random(0),
                name="evader" if object_id == 0 else f"evader:{object_id}",
                object_id=object_id,
            )
            attach = getattr(system, "attach_object", None)
            if attach is not None:
                attach(object_id, evader)
            else:
                system.attach_evader(evader)
            evader.enter(region)
        else:
            evader.enter(region)

    scheduled = 0
    for action in workload.actions:
        if isinstance(action, EvaderEnter):
            sim.call_at(
                action.time,
                lambda a=action: ensure_evader(a.region, a.object_id),
                tag="workload:enter",
            )
        elif isinstance(action, EvaderStep):
            sim.call_at(
                action.time,
                lambda a=action: evader_of(a.object_id).move_to(a.target),
                tag="workload:move",
            )
        elif isinstance(action, IssueFind):
            if owns is not None and not owns(action.origin):
                # The record must exist in *every* shard: the `found`
                # output fires at the evader's current region (its
                # client is the one with evader_here set), which may be
                # owned by any shard.  Register bookkeeping only — the
                # find input itself is delivered in the owning shard.
                def register(a=action) -> None:
                    evader = evader_of(a.object_id)
                    system.finds.new_find(
                        a.origin,
                        evader.region if evader is not None else None,
                        find_id=a.find_id,
                        object_id=a.object_id,
                        deadline=a.deadline,
                    )

                sim.call_at(action.time, register, tag="workload:find-register")
            else:
                sim.call_at(
                    action.time,
                    lambda a=action: system.issue_find(
                        a.origin,
                        find_id=a.find_id,
                        object_id=a.object_id,
                        deadline=a.deadline,
                    ),
                    tag="workload:find",
                )
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown workload action {action!r}")
        scheduled += 1
    return scheduled
