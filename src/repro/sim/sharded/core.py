"""The conservative time-windowed sharded PDES driver.

:class:`ShardedSimulator` advances K shard replicas through adaptive
δ-width windows:

1. compute the next barrier ``b = min(next pending event across all
   shards and in-flight injections) + δ`` — adaptive, so idle stretches
   are skipped in one hop;
2. step every shard to ``b`` (events strictly before the barrier);
3. gather the shards' outboxes of boundary-crossing messages, sort
   them into the canonical ``(deliver_time, src_shard, seq)`` order,
   and hand each to its destination shard for injection.

**Safety** (no causality violation): every cgcast/vbcast delay is at
least δ (the §II-C.3 table bottoms out at the client→cluster rule (e)
delay δ; fault rules only add delay or drop copies).  An event firing
at ``s ∈ [min, b)`` therefore cannot produce a cross-shard delivery
before ``s + δ ≥ min + δ = b`` — i.e. nothing sent inside a window is
deliverable inside it, so exchanging only at barriers loses nothing.
The δ-lookahead property test pins this empirically.

**Determinism**: shard replicas are pure functions of ``(config,
plan, shard_id, workload)``; the exchange order is canonical, fixed by
sender-side dispatch sequence numbers rather than worker completion
order — so the N-shard fingerprint is a pure function of the seed,
independent of scheduling, and identical between the serial and
process backends.

Backends: ``serial`` steps the shard contexts in-process (the
reference semantics, and the honest fallback on 1-core boxes);
``processes`` runs each shard in a forked worker and overlaps their
window computation — the throughput path benchmarked in
BENCH_core.json's ``sharded`` section.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Dict, List, Optional

from ...obs import span as obs_span
from .context import RemoteMessage, ShardContext
from .plan import ShardPlan, strip_plan
from .workload import ScriptedWorkload

BACKENDS = ("serial", "processes")


class ShardedRunError(RuntimeError):
    """Raised for driver protocol violations or worker failures."""


@dataclass(frozen=True)
class ShardedRunResult:
    """Merged outcome of one sharded run (picklable).

    Work totals are exact sums over shards (each dispatch happens in
    exactly one shard); crash/blackout/GPS fault counters come from
    shard 0 (those event streams fire identically in every replica),
    while message-perturbation counters are summed.
    """

    shards: int
    backend: str
    windows: int
    events: int
    messages_sent: int
    total_cost: float
    move_work: float
    find_work: float
    other_work: float
    moves_observed: int
    finds_issued: int
    finds_completed: int
    cross_shard_messages: int
    canonical_fingerprint: str
    exact_fingerprint: Optional[str]
    now: float
    wall_s: float
    busy_s: float
    barrier_wait_s: float
    fault_events: Optional[Dict[str, int]]
    region_counts: tuple
    #: find_id -> merged per-find record (origin repr, object_id,
    #: issued_at, deadline, completed, latency, work, deadline_missed).
    finds: Optional[Dict[int, dict]] = None
    #: object_id -> cluster-originated Grow dispatches (handover count).
    handovers: Optional[Dict[int, int]] = None
    #: Merged ``energy/1`` ledger payload (None without an energy model).
    energy: Optional[Dict[str, Any]] = None
    #: Merged pre-configuration counters (predictive systems only).
    preconfig: Optional[Dict[str, int]] = None


def canonical_fingerprint(send_lines: List[str]) -> str:
    """CRC32 over the sorted canonical send lines, as 8 hex digits."""
    crc = zlib.crc32("\n".join(sorted(send_lines)).encode())
    return f"{crc:08x}"


class ShardedSimulator:
    """Drive one scripted scenario across K region shards.

    Args:
        config: Scenario config; ``config.shards`` fixes K (clamped to
            the region count by the strip partitioner).
        workload: The scripted drive (see
            :mod:`repro.sim.sharded.workload`).
        backend: ``"serial"`` or ``"processes"``; single-shard plans
            always run serially.
        max_windows: Runaway guard on the barrier loop.
    """

    def __init__(
        self,
        config,
        workload: ScriptedWorkload,
        backend: str = "serial",
        max_windows: int = 2_000_000,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}")
        if config.shards > 1 and config.delta <= 0:
            raise ValueError("sharded execution requires delta > 0 lookahead")
        self.config = config
        self.workload = workload
        self.plan: ShardPlan = strip_plan(_tiling_for(config), config.shards)
        self.backend = backend if self.plan.k > 1 else "serial"
        self.max_windows = max_windows

    def run(self) -> ShardedRunResult:
        """Run the workload to quiescence and merge the shard reports."""
        k = self.plan.k
        delta = self.config.delta
        wall0 = perf_counter()
        cross = 0
        windows = 0
        transport = self._make_transport()
        try:
            with obs_span("sharded.run", phase="barrier"):
                next_times = transport.start()
                inboxes: List[List[RemoteMessage]] = [[] for _ in range(k)]
                while True:
                    candidates = [t for t in next_times if t is not None]
                    candidates.extend(
                        m.deliver_time for box in inboxes for m in box
                    )
                    if not candidates:
                        break
                    if windows >= self.max_windows:
                        raise ShardedRunError(
                            f"exceeded max_windows={self.max_windows}"
                        )
                    barrier = min(candidates) + delta
                    outboxes, next_times = transport.step_all(barrier, inboxes)
                    windows += 1
                    exchanged = [m for box in outboxes for m in box]
                    exchanged.sort(key=RemoteMessage.sort_key)
                    cross += len(exchanged)
                    inboxes = [[] for _ in range(k)]
                    for message in exchanged:
                        inboxes[message.dest_shard].append(message)
                reports = transport.finish()
        finally:
            transport.close()
        wall = perf_counter() - wall0
        return self._merge(reports, windows, cross, wall)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _make_transport(self):
        if self.backend == "processes":
            from .worker import ProcessTransport

            return ProcessTransport(self.config, self.plan, self.workload)
        return SerialTransport(self.config, self.plan, self.workload)

    def _merge(
        self, reports: List[dict], windows: int, cross: int, wall: float
    ) -> ShardedRunResult:
        lines: List[str] = []
        finds: Dict[int, dict] = {}
        for report in reports:
            lines.extend(report["send_lines"])
            for find_id, info in report["finds"].items():
                # Every shard carries a record (the `found` output fires
                # at the evader's region, which any shard may own):
                # completion/latency come from the shard that saw the
                # output, per-find work sums over shards.
                merged = finds.get(find_id)
                if merged is None:
                    finds[find_id] = dict(info)
                else:
                    merged["work"] += info["work"]
                    if info["completed"]:
                        # Clients in several regions (hence shards) may
                        # respond; the service answer is the earliest
                        # response anywhere — exactly what the plain
                        # engine's first-response-wins rule records.
                        if not merged["completed"]:
                            merged["completed"] = True
                            merged["latency"] = info["latency"]
                        elif info["latency"] < merged["latency"]:
                            merged["latency"] = info["latency"]
        for info in finds.values():
            deadline = info.get("deadline")
            info["deadline_missed"] = deadline is not None and (
                not info["completed"] or info["latency"] > deadline
            )
        handovers: Dict[int, int] = {}
        for report in reports:
            for oid, count in report.get("handovers", {}).items():
                handovers[oid] = handovers.get(oid, 0) + count
        from ...energy.ledger import merge_energy

        energy = merge_energy(r.get("energy") for r in reports)
        preconfig: Optional[Dict[str, int]] = None
        for report in reports:
            partial = report.get("preconfig")
            if partial is None:
                continue
            if preconfig is None:
                preconfig = dict(partial)
            else:
                for key, value in partial.items():
                    preconfig[key] = preconfig.get(key, 0) + value
        fault_events = None
        if reports[0]["fault_stats"] is not None:
            fault_events = dict(reports[0]["fault_stats"])
            for key in (
                "messages_dropped", "messages_duplicated", "messages_delayed"
            ):
                fault_events[key] = sum(
                    r["fault_stats"][key] for r in reports
                )
        busy = [r["busy_s"] for r in reports]
        total_busy = sum(busy)
        # Serial: everything outside shard windows is driver overhead.
        # Processes: windows overlap, so the wait is wall minus the
        # critical path (the busiest worker) — an honest lower bound.
        overlap = max(busy, default=0.0) if self.backend == "processes" else total_busy
        return ShardedRunResult(
            shards=self.plan.k,
            backend=self.backend,
            windows=windows,
            events=sum(r["events"] for r in reports),
            messages_sent=sum(r["messages_sent"] for r in reports),
            total_cost=sum(r["total_cost"] for r in reports),
            move_work=sum(r["move_work"] for r in reports),
            find_work=sum(r["find_work"] for r in reports),
            other_work=sum(r["other_work"] for r in reports),
            moves_observed=max(r["moves_observed"] for r in reports),
            finds_issued=len(finds),
            finds_completed=sum(1 for f in finds.values() if f["completed"]),
            cross_shard_messages=cross,
            canonical_fingerprint=canonical_fingerprint(lines),
            exact_fingerprint=(
                f"{reports[0]['exact_crc']:08x}" if self.plan.k == 1 else None
            ),
            now=max(r["now"] for r in reports),
            wall_s=wall,
            busy_s=total_busy,
            barrier_wait_s=max(0.0, wall - overlap),
            fault_events=fault_events,
            region_counts=tuple(self.plan.counts()),
            finds=finds,
            handovers=handovers,
            energy=energy,
            preconfig=preconfig,
        )


class SerialTransport:
    """In-process backend: shard contexts stepped round-robin."""

    def __init__(self, config, plan: ShardPlan, workload: ScriptedWorkload) -> None:
        self.contexts = [
            ShardContext(config, plan, shard, workload)
            for shard in range(plan.k)
        ]

    def start(self) -> List[Optional[float]]:
        return [ctx.next_event_time() for ctx in self.contexts]

    def step_all(self, barrier: float, inboxes: List[List[RemoteMessage]]):
        outboxes: List[List[RemoteMessage]] = []
        next_times: List[Optional[float]] = []
        for ctx, inbox in zip(self.contexts, inboxes):
            for message in inbox:
                ctx.inject(message)
            ctx.run_window(barrier)
            outboxes.append(ctx.drain_outbox())
            next_times.append(ctx.next_event_time())
        return outboxes, next_times

    def finish(self) -> List[dict]:
        return [ctx.report() for ctx in self.contexts]

    def close(self) -> None:
        pass


def _tiling_for(config) -> Any:
    """The region tiling ``config`` describes, without building a world."""
    if config.hierarchy is not None:
        return config.hierarchy.tiling
    from ...topo import cache_enabled, topology_cache

    if cache_enabled():
        return topology_cache().grid(config.r, config.max_level).tiling
    from ...hierarchy.grid import grid_hierarchy

    return grid_hierarchy(config.r, config.max_level).tiling
