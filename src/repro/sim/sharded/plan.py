"""Shard plans: deterministic region → shard assignment.

A :class:`ShardPlan` maps every region of a tiling to one of ``k``
shards.  VSAs are pinned by their host region (a cluster process lives
at its head's region) and clients by their current region, so the plan
induces a full partition of the executable world.

The default partitioner, :func:`strip_plan`, slices the tiling's
canonical ``regions()`` order into ``k`` contiguous strips of
near-equal size.  On the grid tiling that order is column-major, so
strips are vertical bands — the handover-minimizing shape for
neighbor-local traffic (cross-shard edges only exist along the two
band borders, cf. Eppstein–Goodrich–Löffler's region assignment).
Everything is pure data derived from ``(tiling, k)``, so every shard
— and every worker process — computes the identical plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

from ...geometry.regions import RegionId
from ...geometry.tiling import Tiling


@dataclass(frozen=True)
class ShardPlan:
    """An immutable region → shard assignment.

    Attributes:
        k: Number of shards (every shard owns at least one region).
        assignment: ``region → shard`` for every region of the tiling.
    """

    k: int
    assignment: Tuple[Tuple[RegionId, int], ...]
    _lookup: Dict[RegionId, int] = field(
        init=False, repr=False, compare=False, hash=False, default=None
    )

    def __post_init__(self) -> None:
        lookup = dict(self.assignment)
        if len(lookup) != len(self.assignment):
            raise ValueError("duplicate region in shard assignment")
        shards = set(lookup.values())
        if shards != set(range(self.k)):
            raise ValueError(
                f"assignment must cover shards 0..{self.k - 1} exactly; "
                f"got {sorted(shards)}"
            )
        object.__setattr__(self, "_lookup", lookup)

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("_lookup", None)  # rebuilt on unpickle
        return state

    def __setstate__(self, state: dict) -> None:
        object.__setattr__(self, "__dict__", state)
        object.__setattr__(self, "_lookup", dict(self.assignment))

    def shard_of(self, region: RegionId) -> int:
        """Shard owning ``region``."""
        try:
            return self._lookup[region]
        except KeyError:
            raise KeyError(f"region {region!r} not in shard plan") from None

    def regions_of(self, shard: int) -> Tuple[RegionId, ...]:
        """Regions owned by ``shard``, in canonical order."""
        return tuple(r for r, s in self.assignment if s == shard)

    def owned_set(self, shard: int) -> FrozenSet[RegionId]:
        return frozenset(self.regions_of(shard))

    def counts(self) -> List[int]:
        """Regions per shard, indexed by shard id."""
        counts = [0] * self.k
        for _region, shard in self.assignment:
            counts[shard] += 1
        return counts

    def boundary_regions(self, tiling: Tiling) -> FrozenSet[RegionId]:
        """Regions with at least one neighbor in a different shard."""
        return frozenset(
            region
            for region, shard in self.assignment
            if any(
                self._lookup.get(nbr, shard) != shard
                for nbr in tiling.neighbors(region)
            )
        )


def strip_plan(tiling: Tiling, k: int) -> ShardPlan:
    """Partition ``tiling.regions()`` into ``k`` contiguous strips.

    Shard ``i`` owns the slice ``regions[i*n//k : (i+1)*n//k]`` of the
    canonical region order — near-equal sizes, fully determined by
    ``(tiling, k)``.  ``k`` is clamped to the region count so every
    shard owns at least one region.

    Raises:
        ValueError: for ``k < 1``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    regions = list(tiling.regions())
    n = len(regions)
    k = min(k, n)
    assignment: List[Tuple[RegionId, int]] = []
    for shard in range(k):
        for region in regions[shard * n // k : (shard + 1) * n // k]:
            assignment.append((region, shard))
    return ShardPlan(k=k, assignment=tuple(assignment))
