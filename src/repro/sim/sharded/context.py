"""One shard's world: a full replica executing only owned events.

Design: rather than splitting the object graph, every shard builds the
*complete* deterministic world from ``config`` (cheap — construction is
pure and topo-cached) and then executes only the events its regions
own.  All inter-automaton interaction in this codebase flows through
messages (the TIOA model), so non-owned replica state simply never
advances — it exists only so object references resolve.  Three hooks
enforce ownership:

* :attr:`CGcast.shard_router` — a dispatch whose destination region is
  foreign is outboxed instead of scheduled locally;
* :attr:`VBcast.owned_filter` / :attr:`VBcast.shard_router` — broadcast
  copies split into locally delivered and outboxed target regions;
* :attr:`VineStalk.client_filter` — augmented-GPS move/left inputs
  reach only owned regions' clients (the evader itself is replicated
  state: every shard applies every scripted evader action).

Cross-shard messages travel as :class:`RemoteMessage` — plain picklable
data with the sender's dispatch sequence number, which gives the driver
a canonical ``(deliver_time, src_shard, seq)`` injection order
independent of worker scheduling.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from ...core.messages import Grow
from ...geometry.regions import RegionId
from ...hierarchy.cluster import ClusterId
from .plan import ShardPlan
from .workload import ScriptedWorkload, schedule_workload


@dataclass(frozen=True)
class RemoteMessage:
    """One boundary-crossing message copy, as exchanged at barriers.

    Attributes:
        kind: ``"cgcast"`` (point delivery) or ``"vbcast"`` (broadcast
            copy into ``regions``).
        send_time: Dispatch time in the sending shard.
        deliver_time: Scheduled delivery time (>= send_time + δ by the
            conservative lookahead).
        src: Sender id (cluster / region, per channel semantics).
        dest: C-gcast destination (cluster or ``("clients", region)``);
            ``None`` for vbcast copies.
        payload: The message object (picklable).
        dest_shard: Shard owning the destination region(s).
        src_shard: Sending shard.
        seq: Sender-shard dispatch sequence — the canonical tiebreak.
        regions: vbcast only — foreign target regions of this copy
            owned by ``dest_shard``.
    """

    kind: str
    send_time: float
    deliver_time: float
    src: Any
    dest: Any
    payload: Any
    dest_shard: int
    src_shard: int
    seq: int
    regions: Tuple[RegionId, ...] = ()

    def sort_key(self) -> Tuple[float, int, int]:
        return (self.deliver_time, self.src_shard, self.seq)


def canonical_send_line(record) -> str:
    """One C-gcast send record as a canonical, order-independent string."""
    return (
        f"{record.time!r}|{record.src!r}|{record.dest!r}|"
        f"{record.payload!r}|{record.cost!r}|{record.delay!r}"
    )


class ShardContext:
    """A buildable, steppable shard replica.

    Args:
        config: The scenario config (its ``shards`` field is ignored
            here — the replica itself is always built single-shard).
        plan: The region → shard assignment.
        shard_id: This shard's id in ``plan``.
        workload: The scripted drive; evader actions are scheduled
            fully, finds only when owned.

    With ``plan.k == 1`` no hooks are installed and the full workload
    is scheduled — the replica is then *bit-identical* to the plain
    serial engine path, which the K=1 golden test pins.
    """

    def __init__(
        self,
        config,
        plan: ShardPlan,
        shard_id: int,
        workload: ScriptedWorkload,
    ) -> None:
        from ...scenario import build

        self.plan = plan
        self.shard_id = shard_id
        self.owned = plan.owned_set(shard_id)
        self.scenario = build(config.with_(shards=1))
        self.system = self.scenario.system
        self.sim = self.system.sim
        self.outbox: List[RemoteMessage] = []
        self._seq = 0
        self.windows = 0
        self.busy_s = 0.0
        self.send_lines: List[str] = []
        self._exact_crc = 0
        # object_id -> cluster-originated Grow dispatches (handovers).
        # Each dispatch is observed in exactly one shard, so per-object
        # sums across shards are exact and K-invariant.
        self.handovers: Dict[int, int] = {}
        self.system.cgcast.observe(self._observe_send)
        sharded = plan.k > 1
        if sharded:
            self.system.cgcast.shard_router = self._route_cgcast
            vbcast = getattr(self.system.network, "vbcast", None)
            if vbcast is not None:
                vbcast.owned_filter = self.owned.__contains__
                vbcast.shard_router = self._route_vbcast
            if hasattr(self.system, "client_filter"):
                self.system.client_filter = self.owned.__contains__
        owns = self.owned.__contains__ if sharded else None
        schedule_workload(self.system, workload, owns=owns)

    # ------------------------------------------------------------------
    # Routing hooks
    # ------------------------------------------------------------------
    def _observe_send(self, record) -> None:
        line = canonical_send_line(record)
        self.send_lines.append(line)
        self._exact_crc = zlib.crc32(line.encode(), self._exact_crc)
        payload = record.payload
        if isinstance(payload, Grow) and isinstance(record.src, ClusterId):
            oid = getattr(payload, "object_id", 0)
            self.handovers[oid] = self.handovers.get(oid, 0) + 1

    def _route_cgcast(self, src, dest, dest_region, payload, deliver_time) -> bool:
        shard = self.plan.shard_of(dest_region)
        if shard == self.shard_id:
            return False
        self._seq += 1
        self.outbox.append(RemoteMessage(
            kind="cgcast",
            send_time=self.sim.now,
            deliver_time=deliver_time,
            src=src,
            dest=dest,
            payload=payload,
            dest_shard=shard,
            src_shard=self.shard_id,
            seq=self._seq,
        ))
        return True

    def _route_vbcast(self, source_region, message, remote_regions, deliver_time) -> None:
        groups: Dict[int, List[RegionId]] = {}
        for region in remote_regions:
            groups.setdefault(self.plan.shard_of(region), []).append(region)
        for shard in sorted(groups):
            self._seq += 1
            self.outbox.append(RemoteMessage(
                kind="vbcast",
                send_time=self.sim.now,
                deliver_time=deliver_time,
                src=source_region,
                dest=None,
                payload=message,
                dest_shard=shard,
                src_shard=self.shard_id,
                seq=self._seq,
                regions=tuple(groups[shard]),
            ))

    # ------------------------------------------------------------------
    # Stepping (driver interface)
    # ------------------------------------------------------------------
    def next_event_time(self) -> Optional[float]:
        return self.sim.next_event_time()

    def inject(self, message: RemoteMessage) -> None:
        """Schedule an incoming cross-shard message for local delivery."""
        if message.kind == "cgcast":
            self.sim.call_at(
                message.deliver_time,
                lambda m=message: self.system.cgcast.apply_remote(
                    m.src, m.dest, m.payload
                ),
                tag="xshard:cgcast",
            )
        elif message.kind == "vbcast":
            vbcast = self.system.network.vbcast
            self.sim.call_at(
                message.deliver_time,
                lambda m=message: vbcast.apply_remote(m.src, m.payload, m.regions),
                tag="xshard:vbcast",
            )
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown remote message kind {message.kind!r}")

    def run_window(self, barrier: float) -> int:
        """Run all local events strictly before ``barrier``."""
        t0 = perf_counter()
        fired = self.sim.run_window(barrier)
        self.busy_s += perf_counter() - t0
        self.windows += 1
        return fired

    def drain_outbox(self) -> List[RemoteMessage]:
        out, self.outbox = self.outbox, []
        return out

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def report(self) -> dict:
        """Picklable end-of-run summary for the driver to merge."""
        accountant = self.scenario.accountant
        finds = {}
        for record in self.system.finds.records.values():
            finds[record.find_id] = {
                "origin": repr(record.origin),
                "object_id": record.object_id,
                "issued_at": record.issued_at,
                "deadline": record.deadline,
                "completed": record.completed,
                "latency": record.latency,
                "work": record.work,
            }
        stats = self.scenario.fault_stats
        ledger = self.scenario.energy_ledger
        preconfig = None
        summarize = getattr(self.system, "preconfig_summary", None)
        if summarize is not None:
            preconfig = summarize()
        return {
            "shard_id": self.shard_id,
            "owned_regions": len(self.owned),
            "events": self.sim.events_fired,
            "windows": self.windows,
            "busy_s": self.busy_s,
            "now": self.sim.now,
            "messages_sent": self.system.cgcast.messages_sent,
            "total_cost": self.system.cgcast.total_cost,
            "move_work": accountant.move_work if accountant else 0.0,
            "find_work": accountant.find_work if accountant else 0.0,
            "other_work": accountant.other_work if accountant else 0.0,
            "moves_observed": getattr(self.system, "moves_observed", 0),
            "send_lines": self.send_lines,
            "exact_crc": self._exact_crc,
            "finds": finds,
            "handovers": dict(self.handovers),
            "fault_stats": stats.as_dict() if stats is not None else None,
            "energy": ledger.as_dict() if ledger is not None else None,
            "preconfig": preconfig,
        }
