"""Region-sharded conservative PDES core (`repro.sim.sharded`).

Partitions the grid hierarchy into K region shards, runs each shard's
event loop independently (in-process or in forked workers), and
exchanges boundary-crossing cgcast/vbcast traffic at conservative
δ-width time barriers in a canonical order — seed-deterministic
regardless of worker scheduling, with a bit-identical K=1 mode.

See DESIGN.md §8 for the barrier protocol and determinism argument.
"""

from .context import RemoteMessage, ShardContext, canonical_send_line
from .core import (
    ShardedRunError,
    ShardedRunResult,
    ShardedSimulator,
    canonical_fingerprint,
)
from .plan import ShardPlan, strip_plan
from .runner import (
    ShardedWalkResult,
    run_reference_walk,
    run_sharded_walk,
    walk_fault_plan,
)
from .workload import (
    EvaderEnter,
    EvaderStep,
    IssueFind,
    ScriptedWorkload,
    make_walk_workload,
    schedule_workload,
)

__all__ = [
    "EvaderEnter",
    "EvaderStep",
    "IssueFind",
    "RemoteMessage",
    "ScriptedWorkload",
    "ShardContext",
    "ShardPlan",
    "ShardedRunError",
    "ShardedRunResult",
    "ShardedSimulator",
    "ShardedWalkResult",
    "canonical_fingerprint",
    "canonical_send_line",
    "make_walk_workload",
    "run_reference_walk",
    "run_sharded_walk",
    "schedule_workload",
    "strip_plan",
    "walk_fault_plan",
]
