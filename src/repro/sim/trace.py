"""Structured trace log for simulation runs.

Components record :class:`TraceRecord` entries (time, source, kind,
payload).  Tests and experiment runners query the log to assert on
orderings and to reconstruct executions; benchmarks usually disable it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence.

    Attributes:
        time: Simulation time of the occurrence.
        source: Identifier of the emitting component (e.g. ``"tracker:(2,3)@1"``).
        kind: Short machine-readable kind (e.g. ``"send"``, ``"grow"``).
        detail: Free-form payload describing the occurrence.
    """

    time: float
    source: str
    kind: str
    detail: Any = None


class TraceLog:
    """Append-only in-memory trace with cheap filtering.

    The log can be disabled (``enabled=False``) to make recording a no-op,
    which benchmarks use to avoid measurement overhead.
    """

    def __init__(self, enabled: bool = True, capacity: Optional[int] = None) -> None:
        self.enabled = enabled
        self._records: deque[TraceRecord] = deque(maxlen=capacity)
        self._subscribers: list[Callable[[TraceRecord], None]] = []

    @property
    def capacity(self) -> Optional[int]:
        """Retention bound; the oldest records are evicted past it."""
        return self._records.maxlen

    @capacity.setter
    def capacity(self, capacity: Optional[int]) -> None:
        if capacity != self._records.maxlen:
            # A deque's maxlen is immutable; rebuild, keeping the newest
            # records (matching what bounded appends would have kept).
            self._records = deque(self._records, maxlen=capacity)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def record(self, time: float, source: str, kind: str, detail: Any = None) -> None:
        """Append a record (no-op when disabled).

        Eviction past ``capacity`` is O(1): the backing deque drops the
        oldest record as the new one lands.
        """
        if not self.enabled:
            return
        rec = TraceRecord(time, source, kind, detail)
        self._records.append(rec)
        for fn in self._subscribers:
            fn(rec)

    def subscribe(self, fn: Callable[[TraceRecord], None]) -> None:
        """Invoke ``fn`` on every future record (even when capacity-evicted)."""
        self._subscribers.append(fn)

    def unsubscribe(self, fn: Callable[[TraceRecord], None]) -> None:
        """Remove a subscriber installed by :meth:`subscribe` (no-op if absent)."""
        try:
            self._subscribers.remove(fn)
        except ValueError:
            pass

    @property
    def subscriber_count(self) -> int:
        """Number of live subscribers (leak detection in tests)."""
        return len(self._subscribers)

    def clear(self) -> None:
        self._records.clear()

    def filter(
        self,
        kind: Optional[str] = None,
        source: Optional[str] = None,
        since: float = float("-inf"),
    ) -> list[TraceRecord]:
        """Return records matching all provided criteria."""
        out = []
        for rec in self._records:
            if kind is not None and rec.kind != kind:
                continue
            if source is not None and rec.source != source:
                continue
            if rec.time < since:
                continue
            out.append(rec)
        return out

    def kinds(self) -> dict:
        """Histogram of record kinds."""
        hist: dict = {}
        for rec in self._records:
            hist[rec.kind] = hist.get(rec.kind, 0) + 1
        return hist
