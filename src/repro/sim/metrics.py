"""Counters, gauges and time-series for experiment instrumentation.

The :class:`MetricsRegistry` is deliberately minimal: components bump
counters by name; experiment runners read totals and series afterwards.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional


@dataclass
class Counter:
    """Monotone counter with an optional running sum of weights."""

    name: str
    count: int = 0
    total: float = 0.0

    def add(self, weight: float = 1.0) -> None:
        self.count += 1
        self.total += weight


@dataclass
class Series:
    """A time-series of ``(time, value)`` samples."""

    name: str
    samples: list = field(default_factory=list)

    def add(self, time: float, value: float) -> None:
        self.samples.append((time, value))

    def values(self) -> list:
        return [v for _, v in self.samples]

    def max(self) -> float:
        return max(self.values()) if self.samples else 0.0

    def last(self) -> Optional[float]:
        return self.samples[-1][1] if self.samples else None


class MetricsRegistry:
    """Named counters and series, created on first use."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._series: dict[str, Series] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def series(self, name: str) -> Series:
        if name not in self._series:
            self._series[name] = Series(name)
        return self._series[name]

    def counters(self) -> dict:
        return dict(self._counters)

    def snapshot(self) -> dict:
        """Plain-dict snapshot: counter name -> (count, total)."""
        return {n: (c.count, c.total) for n, c in self._counters.items()}

    def reset(self) -> None:
        self._counters.clear()
        self._series.clear()


def summarize(values: Iterable[float]) -> dict:
    """Mean / min / max / stddev summary of a value collection."""
    vals = list(values)
    if not vals:
        return {"n": 0, "mean": 0.0, "min": 0.0, "max": 0.0, "std": 0.0}
    n = len(vals)
    mean = sum(vals) / n
    var = sum((v - mean) ** 2 for v in vals) / n
    return {"n": n, "mean": mean, "min": min(vals), "max": max(vals), "std": math.sqrt(var)}
