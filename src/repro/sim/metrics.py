"""Counters, histograms and time-series for experiment instrumentation.

The :class:`MetricsRegistry` stays small on purpose — components bump
counters/histograms by name; experiment runners and the obs exporter
read totals afterwards — but it is a real aggregation substrate:

* :meth:`MetricsRegistry.merge` folds another registry in (the
  worker-pool reduction path) — counter and histogram merges are
  associative and order-independent, which the Hypothesis property
  suite in ``tests/sim/test_metrics_properties.py`` enforces;
* :meth:`MetricsRegistry.state` / :meth:`MetricsRegistry.restore`
  round-trip a registry through a plain JSON-safe dict (and therefore
  through pickling across process boundaries).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Default histogram bucket upper bounds: decades from 1µ to 1M, which
#: covers both sub-second span durations and work/cost magnitudes.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    10.0 ** exp for exp in range(-6, 7)
)


@dataclass
class Counter:
    """Monotone counter with an optional running sum of weights."""

    name: str
    count: int = 0
    total: float = 0.0

    def add(self, weight: float = 1.0) -> None:
        self.count += 1
        self.total += weight

    def merge(self, other: "Counter") -> None:
        """Fold another counter in (associative, order-independent)."""
        self.count += other.count
        self.total += other.total


@dataclass
class Histogram:
    """Fixed-bucket histogram with count/total/min/max sidecars.

    ``bounds`` are the bucket *upper* bounds; values land in the first
    bucket whose bound is ``>= value``, with one implicit overflow
    bucket past the last bound (``len(counts) == len(bounds) + 1``).
    """

    name: str
    bounds: Tuple[float, ...] = DEFAULT_BUCKETS
    counts: List[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None

    def __post_init__(self) -> None:
        self.bounds = tuple(self.bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted ascending")
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)
        elif len(self.counts) != len(self.bounds) + 1:
            raise ValueError("counts length must be len(bounds) + 1")

    def observe(self, value: float) -> None:
        """Record one value."""
        self.counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram in (requires identical bounds)."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds "
                f"({self.name!r} vs {other.name!r})"
            )
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def as_dict(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }


@dataclass
class Series:
    """A time-series of ``(time, value)`` samples."""

    name: str
    samples: list = field(default_factory=list)

    def add(self, time: float, value: float) -> None:
        self.samples.append((time, value))

    def values(self) -> list:
        return [v for _, v in self.samples]

    def max(self) -> float:
        return max(self.values()) if self.samples else 0.0

    def last(self) -> Optional[float]:
        return self.samples[-1][1] if self.samples else None


class MetricsRegistry:
    """Named counters, histograms and series, created on first use."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._series: dict[str, Series] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def histogram(
        self, name: str, bounds: Optional[Iterable[float]] = None
    ) -> Histogram:
        existing = self._histograms.get(name)
        if existing is None:
            existing = Histogram(
                name, tuple(bounds) if bounds is not None else DEFAULT_BUCKETS
            )
            self._histograms[name] = existing
        elif bounds is not None and tuple(bounds) != existing.bounds:
            raise ValueError(f"histogram {name!r} already has different bounds")
        return existing

    def series(self, name: str) -> Series:
        if name not in self._series:
            self._series[name] = Series(name)
        return self._series[name]

    def counters(self) -> dict:
        return dict(self._counters)

    def histograms(self) -> dict:
        return dict(self._histograms)

    def snapshot(self) -> dict:
        """Plain-dict snapshot: counter name -> (count, total)."""
        return {n: (c.count, c.total) for n, c in self._counters.items()}

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry; returns self.

        Counters and histograms add up (associative, order-independent);
        series merge as sorted sample multisets, so a merge never
        depends on which worker's samples arrived first.
        """
        for name, counter in other._counters.items():
            self.counter(name).merge(counter)
        for name, histogram in other._histograms.items():
            self.histogram(name, histogram.bounds).merge(histogram)
        for name, series in other._series.items():
            mine = self.series(name)
            mine.samples = sorted(mine.samples + list(series.samples))
        return self

    def state(self) -> Dict[str, Any]:
        """Full JSON-safe state (the :meth:`restore` input)."""
        return {
            "counters": {
                n: {"count": c.count, "total": c.total}
                for n, c in sorted(self._counters.items())
            },
            "histograms": {
                n: h.as_dict() for n, h in sorted(self._histograms.items())
            },
            # Sorted-multiset view: sample *order* is not part of a
            # series' identity (merge interleaves worker samples by
            # time), so the canonical state — and therefore equality —
            # must not depend on insertion order either.
            "series": {
                n: [list(sample) for sample in sorted(s.samples)]
                for n, s in sorted(self._series.items())
            },
        }

    @classmethod
    def restore(cls, state: Dict[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`state` output."""
        registry = cls()
        for name, c in state.get("counters", {}).items():
            registry._counters[name] = Counter(
                name, count=c["count"], total=c["total"]
            )
        for name, h in state.get("histograms", {}).items():
            registry._histograms[name] = Histogram(
                name,
                bounds=tuple(h["bounds"]),
                counts=list(h["counts"]),
                count=h["count"],
                total=h["total"],
                min=h["min"],
                max=h["max"],
            )
        for name, samples in state.get("series", {}).items():
            registry._series[name] = Series(
                name, samples=[tuple(sample) for sample in samples]
            )
        return registry

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricsRegistry):
            return NotImplemented
        return self.state() == other.state()

    __hash__ = None  # mutable container

    def reset(self) -> None:
        self._counters.clear()
        self._histograms.clear()
        self._series.clear()


def summarize(values: Iterable[float]) -> dict:
    """Mean / min / max / stddev summary of a value collection."""
    vals = list(values)
    if not vals:
        return {"n": 0, "mean": 0.0, "min": 0.0, "max": 0.0, "std": 0.0}
    n = len(vals)
    mean = sum(vals) / n
    var = sum((v - mean) ** 2 for v in vals) / n
    return {"n": n, "mean": mean, "min": min(vals), "max": max(vals), "std": math.sqrt(var)}
