"""Deterministic calendar queue for discrete-event simulation.

Events are ordered by ``(time, priority, sequence)``.  The sequence number
is assigned at scheduling time, so events scheduled earlier fire earlier
when time and priority tie — this makes every simulation run fully
deterministic for a fixed seed and schedule order.

Cancellation is O(1): a cancelled :class:`Event` stays in the heap but is
skipped when popped (lazy deletion).

Fast lane: the heap stores ``(time, priority, seq, event)`` tuples rather
than bare :class:`Event` objects, so every heap sift compares keys with
C-level tuple comparison instead of calling ``Event.__lt__``.  The ``seq``
component is unique per queue, so a comparison never reaches the event
itself.  :meth:`pop_next_before` fuses the cancelled-entry sweep with the
pop, which lets the simulator loop do a single head scan per fired event
(``peek_time()`` + ``pop()`` each re-scan the head).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class Event:
    """A scheduled callback.

    Attributes:
        time: Simulation time at which the event fires.
        priority: Secondary ordering key; lower fires first at equal time.
        seq: Monotone sequence number breaking remaining ties.
        fn: Zero-argument callable invoked when the event fires.
        tag: Optional free-form label used by traces and tests.
    """

    __slots__ = ("time", "priority", "seq", "fn", "tag", "_cancelled", "_popped")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[[], Any],
        tag: Optional[str] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.tag = tag
        self._cancelled = False
        self._popped = False

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Mark this event so that it is skipped when popped."""
        self._cancelled = True

    def sort_key(self) -> tuple:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "pending"
        return f"Event(t={self.time}, prio={self.priority}, tag={self.tag!r}, {state})"


class EventQueue:
    """Min-heap of :class:`Event` handles with lazy cancellation.

    Heap entries are ``(time, priority, seq, event)`` tuples; the public
    interface still deals in :class:`Event` handles.
    """

    def __init__(self) -> None:
        self._heap: list[tuple] = []
        self._next_seq = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        fn: Callable[[], Any],
        priority: int = 0,
        tag: Optional[str] = None,
    ) -> Event:
        """Schedule ``fn`` at ``time`` and return a cancellable handle."""
        if time != time:  # NaN guard
            raise ValueError("event time must not be NaN")
        seq = self._next_seq
        self._next_seq = seq + 1
        event = Event(time, priority, seq, fn, tag)
        heapq.heappush(self._heap, (time, priority, seq, event))
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event.

        Idempotent, and a no-op for events that already fired (a timer
        may legitimately disarm itself from inside its own wakeup).
        """
        if not event._cancelled and not event._popped:
            event._cancelled = True
            self._live -= 1

    def peek_time(self) -> Optional[float]:
        """Time of the earliest live event, or ``None`` if empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop(self) -> Event:
        """Remove and return the earliest live event.

        Raises:
            IndexError: if the queue holds no live events.
        """
        event = self.pop_next_before(None)
        if event is None:
            raise IndexError("pop from empty EventQueue")
        return event

    def pop_next_before(self, until: Optional[float], strict: bool = False) -> Optional[Event]:
        """Pop the earliest live event with ``time <= until`` in one sweep.

        Cancelled entries at the head are discarded as part of the same
        scan.  Returns ``None`` — leaving the head in place — when the
        queue holds no live event or the earliest one lies beyond
        ``until`` (``until=None`` means no bound).  With ``strict`` the
        bound is exclusive (``time < until``) — the window form the
        sharded PDES driver uses, where an event at exactly the barrier
        belongs to the *next* window (a cross-shard message may still be
        delivered at exactly barrier time).
        """
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            head = heap[0]
            event = head[3]
            if event._cancelled:
                heappop(heap)
                continue
            if until is not None and (head[0] > until or (strict and head[0] >= until)):
                return None
            heappop(heap)
            event._popped = True
            self._live -= 1
            return event
        return None

    def clear(self) -> None:
        self._heap.clear()
        self._live = 0

    # ------------------------------------------------------------------
    # Snapshot / restore (repro.ckpt engine hook)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Capture the queue's full ordering state as plain data.

        The capture carries every pending entry — time, priority, the
        tie-breaking sequence number, the callback, the tag and the
        cancellation flag — plus the next sequence number, so a restored
        queue pops the exact same events in the exact same ``(time,
        priority, seq)`` order and assigns future pushes the same
        sequence numbers the original would have.  Callbacks are held by
        reference; cross-process portability is the
        :mod:`repro.ckpt` codec's job, not this method's.
        """
        return {
            "entries": [
                (time, priority, seq, event.fn, event.tag, event._cancelled)
                for (time, priority, seq, event) in self._heap
            ],
            "next_seq": self._next_seq,
        }

    def restore(self, state: dict) -> None:
        """Reinstate a :meth:`snapshot` capture.

        Fresh :class:`Event` handles are built for every entry, so the
        restored queue shares no mutable state with the snapshot (or
        with handles returned by pushes before the snapshot — those
        handles no longer control the restored queue's entries).
        """
        heap: list[tuple] = []
        live = 0
        for time, priority, seq, fn, tag, cancelled in state["entries"]:
            event = Event(time, priority, seq, fn, tag)
            if cancelled:
                event._cancelled = True
            else:
                live += 1
            heap.append((time, priority, seq, event))
        heapq.heapify(heap)
        self._heap = heap
        self._live = live
        self._next_seq = state["next_seq"]

    def _drop_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0][3]._cancelled:
            heapq.heappop(heap)
