"""Node deployment generators.

Helpers that place :class:`~repro.physical.node.PhysicalNode` fleets
over a tiling: one node per region (guaranteeing every VSA is
emulatable), a uniformly random scatter, a density-based deployment, or
— via :func:`generated` — any declarative
:class:`~repro.mobility.gen.deploy.DeploymentSpec` (hotspot
concentrations, obstacle-masked placements) from the generator
framework (DESIGN.md §10).
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..geometry.tiling import Tiling
from ..mobility.models import MobilityModel
from ..sim.engine import Simulator
from .node import PhysicalNode


def one_per_region(
    sim: Simulator,
    tiling: Tiling,
    model: Optional[MobilityModel] = None,
    dwell: float = 1.0,
    start_id: int = 0,
) -> List[PhysicalNode]:
    """One (static by default) node in every region."""
    nodes = []
    for offset, region in enumerate(tiling.regions()):
        nodes.append(
            PhysicalNode(
                start_id + offset,
                sim,
                tiling,
                region,
                model=model,
                dwell=dwell,
            )
        )
    return nodes


def uniform_random(
    sim: Simulator,
    tiling: Tiling,
    count: int,
    rng: random.Random,
    model: Optional[MobilityModel] = None,
    dwell: float = 1.0,
    start_id: int = 0,
) -> List[PhysicalNode]:
    """``count`` nodes placed in uniformly random regions."""
    if count < 0:
        raise ValueError("count must be non-negative")
    regions = tiling.regions()
    return [
        PhysicalNode(
            start_id + i,
            sim,
            tiling,
            rng.choice(regions),
            model=model,
            dwell=dwell,
            rng=random.Random(rng.random()),
        )
        for i in range(count)
    ]


def generated(
    sim: Simulator,
    tiling: Tiling,
    spec,
    rng: random.Random,
    model: Optional[MobilityModel] = None,
    dwell: float = 1.0,
    start_id: int = 0,
) -> List[PhysicalNode]:
    """Deploy nodes per a :class:`~repro.mobility.gen.deploy.DeploymentSpec`.

    Placement randomness draws from ``rng`` (pass a registry stream for
    reproducible deployments); node ids follow region-sorted placement
    order, so the fleet layout is a pure function of ``(spec, rng)``.
    """
    from ..mobility.gen.deploy import place

    return [
        PhysicalNode(
            start_id + i,
            sim,
            tiling,
            region,
            model=model,
            dwell=dwell,
            rng=random.Random(rng.random()) if model is not None else None,
        )
        for i, region in enumerate(place(spec, tiling, rng))
    ]


def per_region_density(
    sim: Simulator,
    tiling: Tiling,
    nodes_per_region: int,
    model: Optional[MobilityModel] = None,
    dwell: float = 1.0,
    start_id: int = 0,
) -> List[PhysicalNode]:
    """Exactly ``nodes_per_region`` nodes in every region."""
    if nodes_per_region < 0:
        raise ValueError("nodes_per_region must be non-negative")
    nodes = []
    next_id = start_id
    for region in tiling.regions():
        for _ in range(nodes_per_region):
            nodes.append(
                PhysicalNode(next_id, sim, tiling, region, model=model, dwell=dwell)
            )
            next_id += 1
    return nodes
