"""Local broadcast radio (the physical basis of V-bcast).

A message broadcast by a node (or by a VSA emulation anchored in a
region) is delivered after delay ``δ`` to every alive node currently in
the same or a neighboring region — §II-C assumes the supremum distance
between points of neighboring regions is within the physical broadcast
radius, so region adjacency *is* the reachability relation.

Delivery snapshots the recipient set at *send* time plus transit: a node
that leaves the neighborhood mid-flight still receives iff it is within
the neighborhood at delivery time (we re-check at delivery, the
conservative choice for a real radio).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from ..geometry.regions import RegionId
from ..geometry.tiling import Tiling
from ..sim.engine import Simulator
from .node import PhysicalNode

# A receiver callback gets (message, source_region).
Receiver = Callable[[Any, RegionId], None]


class Radio:
    """Broadcast service with per-hop delay ``δ`` over the region graph."""

    def __init__(self, sim: Simulator, tiling: Tiling, delta: float) -> None:
        if delta < 0:
            raise ValueError("delta must be non-negative")
        self.sim = sim
        self.tiling = tiling
        self.delta = delta
        self._nodes: Dict[int, PhysicalNode] = {}
        self._receivers: Dict[int, Receiver] = {}
        self.broadcasts_sent = 0
        self.deliveries = 0

    def register(self, node: PhysicalNode, receiver: Receiver) -> None:
        """Attach a node with its receive callback."""
        self._nodes[node.node_id] = node
        self._receivers[node.node_id] = receiver

    def unregister(self, node: PhysicalNode) -> None:
        self._nodes.pop(node.node_id, None)
        self._receivers.pop(node.node_id, None)

    def nodes_in(self, region: RegionId) -> List[PhysicalNode]:
        """Alive registered nodes currently in ``region``."""
        return [
            n
            for n in self._nodes.values()
            if n.alive and n.region == region
        ]

    def broadcast(self, source_region: RegionId, message: Any) -> None:
        """Broadcast ``message`` from ``source_region`` to its neighborhood."""
        self.broadcasts_sent += 1
        neighborhood = {source_region, *self.tiling.neighbors(source_region)}

        def deliver() -> None:
            for node_id in sorted(self._nodes):
                node = self._nodes[node_id]
                if node.alive and node.region in neighborhood:
                    self.deliveries += 1
                    self._receivers[node_id](message, source_region)

        self.sim.call_after(self.delta, deliver, tag="radio")
