"""GPS oracle (§II-C.1, §III).

The GPS service tells every physical node its region: a
``GPSupdate(u)_p`` is issued when node ``p`` enters the system or
changes region (we also support a periodic refresh).  Per §III, the
service is *augmented* for tracking: it delivers a ``move`` input to
clients of a region exactly when the evader enters it, and a ``left``
when the evader leaves.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..geometry.regions import RegionId
from ..mobility.evader import Evader
from ..sim.engine import Simulator
from .node import PhysicalNode

# GPSupdate sink: (node, region).
GpsUpdateSink = Callable[[PhysicalNode, RegionId], None]
# Evader event sink: (node, event, region) with event ∈ {"move", "left"}.
EvaderEventSink = Callable[[PhysicalNode, str, RegionId], None]


class GpsOracle:
    """Delivers GPSupdate and augmented evader move/left inputs to clients."""

    def __init__(self, sim: Simulator, refresh_period: Optional[float] = None) -> None:
        self.sim = sim
        self.refresh_period = refresh_period
        self._nodes: Dict[int, PhysicalNode] = {}
        self._update_sinks: List[GpsUpdateSink] = []
        self._evader_sinks: List[EvaderEventSink] = []
        self._evader: Optional[Evader] = None
        #: Optional staleness hook (repro.faults): ``(kind, region) ->
        #: extra delay``.  When None or 0.0, delivery stays synchronous.
        self.fault_delay: Optional[Callable[[str, RegionId], float]] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def on_update(self, sink: GpsUpdateSink) -> None:
        self._update_sinks.append(sink)

    def on_evader_event(self, sink: EvaderEventSink) -> None:
        self._evader_sinks.append(sink)

    def track_node(self, node: PhysicalNode) -> None:
        """Register a node; issues its initial GPSupdate immediately."""
        self._nodes[node.node_id] = node
        node.observe(self._node_event)
        self._push_update(node)
        if self.refresh_period is not None:
            self._schedule_refresh(node)

    def attach_evader(self, evader: Evader) -> None:
        """Subscribe to the evader for augmented move/left delivery."""
        if self._evader is not None:
            raise RuntimeError("an evader is already attached")
        self._evader = evader
        evader.observe(self._evader_event)

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------
    def _node_event(self, node: PhysicalNode, event: str, region: RegionId) -> None:
        if event == "enter" or event == "restart":
            self._push_update(node)

    def _push_update(self, node: PhysicalNode) -> None:
        if not node.alive:
            return
        if self.fault_delay is not None:
            extra = self.fault_delay("GPSupdate", node.region)
            if extra > 0.0:
                region = node.region

                def late() -> None:
                    if node.alive and node.region == region:
                        for sink in self._update_sinks:
                            sink(node, region)

                self.sim.call_after(extra, late, tag="gps-stale")
                return
        for sink in self._update_sinks:
            sink(node, node.region)

    def _schedule_refresh(self, node: PhysicalNode) -> None:
        def tick() -> None:
            if node.node_id in self._nodes:
                self._push_update(node)
                self._schedule_refresh(node)

        self.sim.call_after(self.refresh_period, tick, tag=f"gps:{node.node_id}")

    def _evader_event(self, event: str, region: RegionId) -> None:
        """Deliver move/left to every alive client in the evader's region."""
        if self.fault_delay is not None:
            extra = self.fault_delay(event, region)
            if extra > 0.0:
                self.sim.call_after(
                    extra,
                    lambda: self._deliver_evader_event(event, region),
                    tag="gps-stale",
                )
                return
        self._deliver_evader_event(event, region)

    def _deliver_evader_event(self, event: str, region: RegionId) -> None:
        recipients = [
            n for n in self._nodes.values() if n.alive and n.region == region
        ]
        for node in sorted(recipients, key=lambda n: n.node_id):
            for sink in self._evader_sinks:
                sink(node, event, region)
