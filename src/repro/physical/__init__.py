"""Physical substrate: mobile nodes, radio, GPS oracle, deployments (§II-C.1)."""

from .deployment import one_per_region, per_region_density, uniform_random
from .gps import GpsOracle
from .node import NodeObserver, PhysicalNode
from .radio import Radio

__all__ = [
    "GpsOracle",
    "NodeObserver",
    "PhysicalNode",
    "Radio",
    "one_per_region",
    "per_region_density",
    "uniform_random",
]
