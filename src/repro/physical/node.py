"""Physical mobile nodes (§II-C.1 substrate).

A :class:`PhysicalNode` is the hardware carrier of a client automaton:
it has an identity, a current region, an alive flag, and (optionally) a
mobility model relocating it over time.  Region changes are announced to
observers — the GPS oracle subscribes and turns them into
``GPSupdate`` inputs for the client automaton riding the node.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from ..geometry.regions import RegionId
from ..geometry.tiling import Tiling
from ..mobility.models import MobilityModel
from ..sim.engine import Simulator

# Observers receive (node, event, region); event ∈ {"enter", "leave", "fail", "restart"}.
NodeObserver = Callable[["PhysicalNode", str, RegionId], None]


class PhysicalNode:
    """One mobile physical node.

    Args:
        node_id: Unique identifier (``p`` in the paper's ``C_p``).
        sim: Simulator for movement ticks.
        tiling: Deployment space.
        region: Initial region.
        model: Optional mobility model; a node without one is static.
        dwell: Time between relocations when a model is present.
        rng: Random stream for the model.
    """

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        tiling: Tiling,
        region: RegionId,
        model: Optional[MobilityModel] = None,
        dwell: float = 1.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if dwell <= 0:
            raise ValueError("dwell must be positive")
        self.node_id = node_id
        self.sim = sim
        self.tiling = tiling
        self.region: RegionId = region
        self.model = model
        self.dwell = dwell
        self.rng = rng if rng is not None else random.Random(node_id)
        self.alive = True
        self._observers: List[NodeObserver] = []
        self._moving = False
        self._tick_event = None

    @property
    def name(self) -> str:
        return f"node:{self.node_id}"

    def observe(self, observer: NodeObserver) -> None:
        self._observers.append(observer)

    def _emit(self, event: str, region: RegionId) -> None:
        self.sim.trace.record(self.sim.now, self.name, event, region)
        for observer in self._observers:
            observer(self, event, region)

    # ------------------------------------------------------------------
    # Movement
    # ------------------------------------------------------------------
    def move_to(self, target: RegionId) -> None:
        """Relocate to a neighboring region."""
        if not self.alive:
            return
        if target == self.region:
            return
        if not self.tiling.are_neighbors(self.region, target):
            raise ValueError(f"{target!r} not a neighbor of {self.region!r}")
        old = self.region
        self.region = target  # update first so "leave" observers see the node gone
        self._emit("leave", old)
        self._emit("enter", target)

    def start_moving(self) -> None:
        """Begin relocating every ``dwell`` per the mobility model."""
        if self.model is None:
            raise RuntimeError(f"{self.name} has no mobility model")
        if self._moving:
            return
        self._moving = True
        self._schedule_tick()

    def stop_moving(self) -> None:
        self._moving = False
        if self._tick_event is not None:
            self.sim.cancel(self._tick_event)
            self._tick_event = None

    def _schedule_tick(self) -> None:
        self._tick_event = self.sim.call_after(self.dwell, self._tick, tag=self.name)

    def _tick(self) -> None:
        if not self._moving or not self.alive:
            return
        target = self.model.next_region(self.region, self.tiling, self.rng)
        self.move_to(target)
        self._schedule_tick()

    # ------------------------------------------------------------------
    # Failures
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Stopping failure of the node (and anything riding it)."""
        if self.alive:
            self.alive = False
            self._emit("fail", self.region)

    def restart(self) -> None:
        """Restart the node in place."""
        if not self.alive:
            self.alive = True
            self._emit("restart", self.region)
