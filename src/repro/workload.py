"""The unified workload protocol (DESIGN.md §9).

Historically the repo had two ways to drive a system: the picklable
:class:`~repro.sim.sharded.workload.ScriptedWorkload` scripts used by
the sharded engine, and ad-hoc imperative loops in
:mod:`repro.analysis.experiments` (call ``evader.step()``, run to
quiescence, repeat).  This module unifies them behind one tiny
protocol:

    a **workload** is anything with ``events(seed) -> iterable of
    timed actions``

where the actions are the existing frozen dataclasses
(:class:`EvaderEnter`, :class:`EvaderStep`, :class:`IssueFind`).
:func:`materialize` turns any workload into a canonical
:class:`ScriptedWorkload` — time-sorted (stable) and picklable — which
both the plain engine (via :func:`schedule_workload` /
:func:`drive`) and the sharded engine (via
:class:`~repro.sim.sharded.core.ShardedSimulator`) consume.  Because
both paths execute the *same* materialized script, a workload's event
stream is bit-identical on the plain and any-K sharded engines.

:class:`~repro.service.load.LoadGenerator` is just another workload:
its ``events(seed)`` emits the open-loop arrival script for M objects
and K client origins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Protocol, runtime_checkable

from .geometry.regions import RegionId
from .sim.sharded.workload import (
    EvaderEnter,
    EvaderStep,
    IssueFind,
    ScriptedWorkload,
    WorkloadAction,
    make_walk_workload,
    schedule_workload,
)

__all__ = [
    "EvaderEnter",
    "EvaderStep",
    "IssueFind",
    "ScriptedWorkload",
    "WorkloadAction",
    "Workload",
    "WalkWorkload",
    "materialize",
    "drive",
    "schedule_workload",
]


@runtime_checkable
class Workload(Protocol):
    """Anything that yields timed actions for a given seed."""

    def events(self, seed: int = 0) -> Iterable[WorkloadAction]:
        """The action stream; must be a pure function of ``seed``."""
        ...  # pragma: no cover - protocol


def materialize(workload: Workload, seed: int = 0) -> ScriptedWorkload:
    """Freeze any workload into a canonical, picklable script.

    Actions are sorted by time with a *stable* sort, so equal-time
    actions keep generation order — the same-time tiebreak is then
    identical in every shard replica and on the plain engine.
    Idempotent: materializing a :class:`ScriptedWorkload` returns an
    equal script.
    """
    actions = tuple(sorted(workload.events(seed), key=lambda a: a.time))
    if not actions:
        raise ValueError("workload produced no actions")
    horizon = max(a.time for a in actions)
    return ScriptedWorkload(actions=actions, horizon=horizon)


@dataclass(frozen=True)
class WalkWorkload:
    """The classic random-neighbor-walk drive as a protocol workload.

    Same generator as :func:`make_walk_workload` (identical scripts for
    identical parameters); the seed moves into :meth:`events`, so one
    ``WalkWorkload`` value describes a *family* of runs.
    """

    tiling: object
    n_moves: int
    n_finds: int
    dwell: float = 40.0
    start: Optional[RegionId] = None

    def events(self, seed: int = 0) -> Iterable[WorkloadAction]:
        return make_walk_workload(
            self.tiling,
            self.n_moves,
            self.n_finds,
            seed,
            dwell=self.dwell,
            start=self.start,
        ).actions


def drive(system, workload: Workload, seed: int = 0) -> ScriptedWorkload:
    """Run ``workload`` on a plain (unsharded) system to quiescence.

    Materializes the script, schedules every action and runs until the
    simulator drains.  Returns the materialized script so callers can
    hand the *same* frozen stream to a sharded run for comparison.
    """
    script = materialize(workload, seed)
    schedule_workload(system, script, owns=None)
    system.run_to_quiescence()
    return script
