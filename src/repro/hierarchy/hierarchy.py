"""Cluster hierarchy over a tiling (§II-B).

The hierarchy is the four-tuple ``(C, L, cluster, h)``: cluster ids,
levels ``0..MAX``, a total onto map from ``(region, level)`` to the
containing cluster, and a head map from cluster to one of its member
regions.  :class:`ClusterHierarchy` is the abstract interface;
:class:`ExplicitHierarchy` realises it from explicit level maps and is
the base for the grid specialisation.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence

from ..geometry.regions import RegionId
from ..geometry.tiling import Tiling
from .cluster import ClusterId
from .params import GeometryParams


class ClusterHierarchy:
    """Abstract cluster hierarchy interface.

    Concrete hierarchies must provide the primitive maps; the derived
    terminology of §II-B (members, nbrs, children, parent) has default
    implementations that concrete classes may override with faster ones.
    """

    tiling: Tiling
    max_level: int
    params: GeometryParams

    # -- primitive maps -------------------------------------------------
    def cluster(self, u: RegionId, level: int) -> ClusterId:
        """The level-``level`` cluster containing region ``u``."""
        raise NotImplementedError

    def head(self, c: ClusterId) -> RegionId:
        """The head region ``h(c)`` of cluster ``c``."""
        raise NotImplementedError

    def members(self, c: ClusterId) -> List[RegionId]:
        """All member regions of ``c`` (stable order)."""
        raise NotImplementedError

    def clusters_at_level(self, level: int) -> List[ClusterId]:
        """All clusters of one level (stable order)."""
        raise NotImplementedError

    # -- derived terminology --------------------------------------------
    def levels(self) -> range:
        return range(self.max_level + 1)

    def level(self, c: ClusterId) -> int:
        return c.level

    def root(self) -> ClusterId:
        """The unique level-MAX cluster."""
        tops = self.clusters_at_level(self.max_level)
        if len(tops) != 1:  # pragma: no cover - guarded by validation
            raise ValueError(f"expected 1 top cluster, found {len(tops)}")
        return tops[0]

    def all_clusters(self) -> List[ClusterId]:
        out: List[ClusterId] = []
        for level in self.levels():
            out.extend(self.clusters_at_level(level))
        return out

    def nbrs(self, c: ClusterId) -> List[ClusterId]:
        """Same-level clusters sharing a region boundary with ``c``."""
        found = set()
        member_set = set(self.members(c))
        for u in member_set:
            for v in self.tiling.neighbors(u):
                if v in member_set:
                    continue
                other = self.cluster(v, c.level)
                if other != c:
                    found.add(other)
        return sorted(found)

    def children(self, c: ClusterId) -> List[ClusterId]:
        """Level-(l−1) clusters whose members lie inside ``c``."""
        if c.level == 0:
            return []
        member_set = set(self.members(c))
        seen = set()
        out = []
        for u in self.members(c):
            child = self.cluster(u, c.level - 1)
            if child not in seen:
                seen.add(child)
                if set(self.members(child)) <= member_set:
                    out.append(child)
        return sorted(out)

    def parent(self, c: ClusterId) -> Optional[ClusterId]:
        """The level-(l+1) cluster containing ``c`` (None at MAX)."""
        if c.level == self.max_level:
            return None
        any_member = self.members(c)[0]
        return self.cluster(any_member, c.level + 1)

    # -- convenience -----------------------------------------------------
    def chain(self, u: RegionId) -> List[ClusterId]:
        """The iterated clusters of region ``u``: ``[cluster(u,0) .. cluster(u,MAX)]``."""
        return [self.cluster(u, level) for level in self.levels()]

    def are_cluster_neighbors(self, a: ClusterId, b: ClusterId) -> bool:
        return a.level == b.level and b in self.nbrs(a)

    def cluster_distance(self, a: ClusterId, b: ClusterId) -> int:
        """Min region-graph distance between members of ``a`` and ``b``."""
        best = None
        for u in self.members(a):
            for v in self.members(b):
                dist = self.tiling.distance(u, v)
                if best is None or dist < best:
                    best = dist
        if best is None:  # pragma: no cover - empty clusters are invalid
            raise ValueError("cluster with no members")
        return best

    def head_distance(self, a: ClusterId, b: ClusterId) -> int:
        """Region-graph distance between the heads of two clusters."""
        return self.tiling.distance(self.head(a), self.head(b))


class ExplicitHierarchy(ClusterHierarchy):
    """Hierarchy built from explicit per-level region→key assignments.

    Args:
        tiling: The underlying tiling.
        level_maps: ``level_maps[l][u]`` is the level-``l`` cluster key of
            region ``u``.  ``level_maps[0]`` may be omitted per-region; by
            requirement 3, level 0 is always the singleton ``{u}`` keyed
            by the region id itself.
        params: Geometry parameter functions for the clustering.
        heads: Optional explicit head map ``{ClusterId: RegionId}``; by
            default the member region closest to the member centroid
            (ties to minimum region id) is chosen.
    """

    def __init__(
        self,
        tiling: Tiling,
        level_maps: Sequence[Dict[RegionId, Hashable]],
        params: GeometryParams,
        heads: Optional[Dict[ClusterId, RegionId]] = None,
    ) -> None:
        self.tiling = tiling
        self.max_level = len(level_maps) - 1
        if self.max_level < 1:
            raise ValueError("hierarchy needs MAX > 0")
        self.params = params

        regions = tiling.regions()
        self._assignment: Dict[tuple, ClusterId] = {}
        self._members: Dict[ClusterId, List[RegionId]] = {}
        for level, mapping in enumerate(level_maps):
            for u in regions:
                if u not in mapping:
                    raise ValueError(f"level {level} map misses region {u!r}")
                cid = ClusterId(level, mapping[u])
                self._assignment[(u, level)] = cid
                self._members.setdefault(cid, []).append(u)
        for member_list in self._members.values():
            member_list.sort()
        self._by_level: Dict[int, List[ClusterId]] = {}
        for cid in self._members:
            self._by_level.setdefault(cid.level, []).append(cid)
        for cluster_list in self._by_level.values():
            cluster_list.sort()

        self._heads: Dict[ClusterId, RegionId] = {}
        for cid, member_list in self._members.items():
            if heads and cid in heads:
                if heads[cid] not in member_list:
                    raise ValueError(f"head of {cid} is not a member")
                self._heads[cid] = heads[cid]
            else:
                self._heads[cid] = default_head(tiling, member_list)

        self._nbrs_cache: Dict[ClusterId, List[ClusterId]] = {}
        self._children_cache: Dict[ClusterId, List[ClusterId]] = {}

    def cluster(self, u: RegionId, level: int) -> ClusterId:
        try:
            return self._assignment[(u, level)]
        except KeyError:
            raise KeyError(f"no level {level} cluster for region {u!r}") from None

    def head(self, c: ClusterId) -> RegionId:
        try:
            return self._heads[c]
        except KeyError:
            raise KeyError(f"unknown cluster {c}") from None

    def members(self, c: ClusterId) -> List[RegionId]:
        try:
            return list(self._members[c])
        except KeyError:
            raise KeyError(f"unknown cluster {c}") from None

    def clusters_at_level(self, level: int) -> List[ClusterId]:
        if not 0 <= level <= self.max_level:
            raise ValueError(f"level {level} outside 0..{self.max_level}")
        return list(self._by_level.get(level, []))

    def nbrs(self, c: ClusterId) -> List[ClusterId]:
        if c not in self._nbrs_cache:
            self._nbrs_cache[c] = super().nbrs(c)
        return list(self._nbrs_cache[c])

    def children(self, c: ClusterId) -> List[ClusterId]:
        if c not in self._children_cache:
            self._children_cache[c] = super().children(c)
        return list(self._children_cache[c])


def default_head(tiling: Tiling, member_list: List[RegionId]) -> RegionId:
    """Deterministic head choice: member closest to the member centroid."""
    if not member_list:
        raise ValueError("cluster with no members")
    if len(member_list) == 1:
        return member_list[0]
    centers = [tiling.region(u).center for u in member_list]
    cx = sum(pt.x for pt in centers) / len(centers)
    cy = sum(pt.y for pt in centers) / len(centers)

    def score(u: RegionId):
        pt = tiling.region(u).center
        return ((pt.x - cx) ** 2 + (pt.y - cy) ** 2, u)

    return min(member_list, key=score)


def singleton_level_map(tiling: Tiling) -> Dict[RegionId, Hashable]:
    """The level-0 map required by requirement 3: each region is its own cluster."""
    return {u: u for u in tiling.regions()}
