"""Agglomerative hierarchy construction for arbitrary tilings.

The paper generalizes STALK's cluster definitions to *any* clustering
meeting §II-B; grids and strips have closed-form instances, but a user
with an irregular region graph (a hex map, a road network) needs a
constructor.  :func:`build_agglomerative_hierarchy` contracts the
cluster graph level by level: each round greedily merges every cluster
with up to ``ratio − 1`` unmerged neighbors (breadth-first, minimum-id
order), which guarantees the structural requirements (connected
clusters, nesting, a single top).  Geometry parameters are *measured*
(:func:`~repro.hierarchy.params.tight_params`) rather than closed-form.

The §II-B geometry assumptions (notably proximity) are not guaranteed
for arbitrary graphs — run :func:`~repro.hierarchy.validation.validate_hierarchy`
when the work bounds matter.  VINESTALK's *safety* (path maintenance,
finds terminating at the evader) does not depend on them, which the hex
integration tests demonstrate.
"""

from __future__ import annotations

from typing import Dict, Hashable, List

from ..geometry.regions import RegionId
from ..geometry.tiling import Tiling
from .hierarchy import ExplicitHierarchy, singleton_level_map
from .params import GeometryParams, tight_params


def build_agglomerative_hierarchy(
    tiling: Tiling, ratio: int = 3, max_levels: int = 32
) -> ExplicitHierarchy:
    """Build a hierarchy over ``tiling`` by repeated neighbor merging.

    Args:
        tiling: Any validated tiling.
        ratio: Target children per parent (merge group size).
        max_levels: Safety bound on hierarchy depth.

    Returns:
        An :class:`ExplicitHierarchy` with measured geometry parameters.
    """
    if ratio < 2:
        raise ValueError("ratio must be >= 2")
    regions = tiling.regions()
    level_maps: List[Dict[RegionId, Hashable]] = [singleton_level_map(tiling)]

    # Current clustering: cluster key -> member regions, plus adjacency.
    members: Dict[Hashable, List[RegionId]] = {u: [u] for u in regions}

    def cluster_adjacency() -> Dict[Hashable, set]:
        owner = {}
        for key, mems in members.items():
            for u in mems:
                owner[u] = key
        adj: Dict[Hashable, set] = {key: set() for key in members}
        for u in regions:
            for v in tiling.neighbors(u):
                if owner[u] != owner[v]:
                    adj[owner[u]].add(owner[v])
        return adj

    level = 0
    while len(members) > 1:
        level += 1
        if level > max_levels:
            raise RuntimeError("hierarchy construction did not converge")
        adj = cluster_adjacency()
        assignment: Dict[Hashable, int] = {}
        next_parent = 0
        for key in sorted(members):
            if key in assignment:
                continue
            parent = next_parent
            next_parent += 1
            assignment[key] = parent
            group = 1
            # Greedy BFS over unmerged neighbors, minimum key first.
            frontier = [key]
            while frontier and group < ratio:
                current = frontier.pop(0)
                for nbr in sorted(adj[current]):
                    if nbr in assignment or group >= ratio:
                        continue
                    assignment[nbr] = parent
                    group += 1
                    frontier.append(nbr)
        new_members: Dict[Hashable, List[RegionId]] = {}
        for key, parent in assignment.items():
            new_members.setdefault(parent, []).extend(members[key])
        members = new_members
        level_maps.append(
            {
                u: parent
                for parent, mems in members.items()
                for u in mems
            }
        )

    if len(level_maps) < 2:
        raise ValueError("tiling has a single region; no hierarchy to build")

    # Placeholder params so ExplicitHierarchy can assemble, then measure.
    max_level = len(level_maps) - 1
    placeholder = GeometryParams(
        max_level,
        tuple(1 for _ in range(max_level + 1)),
        tuple(1 for _ in range(max_level + 1)),
        tuple(1 for _ in range(max_level + 1)),
        tuple(1 for _ in range(max_level + 1)),
    )
    hierarchy = ExplicitHierarchy(tiling, level_maps, placeholder)
    hierarchy.params = tight_params(hierarchy)
    return hierarchy
