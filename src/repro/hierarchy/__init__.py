"""Cluster hierarchies over tilings (§II-B)."""

from .builder import build_agglomerative_hierarchy
from .cluster import ClusterId
from .grid import GridHierarchy, diameter_of, grid_hierarchy
from .hierarchy import (
    ClusterHierarchy,
    ExplicitHierarchy,
    default_head,
    singleton_level_map,
)
from .params import GeometryParams, grid_params, tight_params
from .strip import StripHierarchy, strip_hierarchy, strip_params
from .validation import (
    HierarchyValidationError,
    validate_geometry,
    validate_hierarchy,
    validate_proximity,
    validate_structure,
)

__all__ = [
    "ClusterHierarchy",
    "ClusterId",
    "ExplicitHierarchy",
    "GeometryParams",
    "GridHierarchy",
    "HierarchyValidationError",
    "StripHierarchy",
    "build_agglomerative_hierarchy",
    "default_head",
    "diameter_of",
    "grid_hierarchy",
    "grid_params",
    "singleton_level_map",
    "strip_hierarchy",
    "strip_params",
    "tight_params",
    "validate_geometry",
    "validate_hierarchy",
    "validate_proximity",
    "validate_structure",
]

from .serialization import (  # noqa: E402
    hierarchy_from_dict,
    hierarchy_to_dict,
    load_hierarchy,
    save_hierarchy,
    tiling_from_dict,
    tiling_to_dict,
)

__all__ += [
    "hierarchy_from_dict",
    "hierarchy_to_dict",
    "load_hierarchy",
    "save_hierarchy",
    "tiling_from_dict",
    "tiling_to_dict",
]
