"""Cluster identifiers (§II-B).

A cluster id pairs its level with a level-unique key.  For the grid
hierarchy the key is the ``(block_col, block_row)`` coordinate of the
``r^level``-sized block; generic hierarchies may use any hashable key.
Cluster ids are ordered (level first), which gives deterministic
iteration everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable


@dataclass(frozen=True, order=True)
class ClusterId:
    """Identifier of one cluster in the hierarchy.

    Attributes:
        level: Hierarchy level of the cluster (0 .. MAX).
        key: Level-unique key distinguishing clusters at this level.

    Cluster ids are dict keys on every message hop, so the hash is
    computed once and the equality check short-circuits on identity (the
    hierarchy interns its ids, making identity the common case).
    """

    level: int
    key: Hashable

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.level, self.key)))

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is not self.__class__:
            return NotImplemented
        return self.level == other.level and self.key == other.key

    def __reduce__(self):
        # Recompute the cached hash on unpickle: str hashes are salted
        # per process, so a pickled hash would be wrong in a worker.
        return (self.__class__, (self.level, self.key))

    def __repr__(self) -> str:
        # Ids are interned and every send formats its endpoints into a
        # trace line, so the string is cached on first use.
        cached = self.__dict__.get("_repr")
        if cached is None:
            cached = f"C{self.level}:{self.key}"
            object.__setattr__(self, "_repr", cached)
        return cached
