"""Cluster identifiers (§II-B).

A cluster id pairs its level with a level-unique key.  For the grid
hierarchy the key is the ``(block_col, block_row)`` coordinate of the
``r^level``-sized block; generic hierarchies may use any hashable key.
Cluster ids are ordered (level first), which gives deterministic
iteration everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable


@dataclass(frozen=True, order=True)
class ClusterId:
    """Identifier of one cluster in the hierarchy.

    Attributes:
        level: Hierarchy level of the cluster (0 .. MAX).
        key: Level-unique key distinguishing clusters at this level.
    """

    level: int
    key: Hashable

    def __repr__(self) -> str:
        return f"C{self.level}:{self.key}"
