"""Hierarchy validation: structural requirements and geometry assumptions (§II-B).

:func:`validate_structure` checks requirements 1–6 of §II-B;
:func:`validate_geometry` checks the declared parameter functions
``n, p, q, ω`` against the actual clustering (assumptions 2–5) and the
derived relationships; :func:`validate_proximity` checks the proximity
requirement (assumption 1) by computing, for each top cluster, the
downward closure of "contained or has a contained neighbor" chains.

All checks raise :class:`HierarchyValidationError` with a description of
the first violated condition.  They are exhaustive and intended for
tests and world-construction time, not inner loops.
"""

from __future__ import annotations

from typing import List, Set

from .cluster import ClusterId
from .hierarchy import ClusterHierarchy


class HierarchyValidationError(ValueError):
    """A hierarchy violates a §II-B requirement."""


def validate_structure(h: ClusterHierarchy) -> None:
    """Requirements 1–6 of §II-B."""
    regions = h.tiling.regions()
    if h.max_level < 1:
        raise HierarchyValidationError("MAX must be > 0")

    # Requirement 2: exactly one level-MAX cluster, and it covers everything.
    tops = h.clusters_at_level(h.max_level)
    if len(tops) != 1:
        raise HierarchyValidationError(f"{len(tops)} level-MAX clusters, want 1")
    if sorted(h.members(tops[0])) != sorted(regions):
        raise HierarchyValidationError("level-MAX cluster does not cover all regions")

    # Requirement 3: singleton level-0 clusters.
    for u in regions:
        c0 = h.cluster(u, 0)
        if h.members(c0) != [u]:
            raise HierarchyValidationError(f"level-0 cluster of {u!r} is not {{u}}")

    seen_ids: Set[ClusterId] = set()
    for level in h.levels():
        clusters = h.clusters_at_level(level)
        covered: dict = {}
        for c in clusters:
            # Requirement 1: each cluster belongs to exactly one level.
            if c in seen_ids:
                raise HierarchyValidationError(f"cluster {c} appears at two levels")
            seen_ids.add(c)
            if c.level != level:
                raise HierarchyValidationError(f"cluster {c} listed at level {level}")
            members = h.members(c)
            if not members:
                raise HierarchyValidationError(f"cluster {c} has no members")
            # Requirement 4: same-level clusters don't overlap
            # (shared boundary regions are resolved to one cluster by the
            # minimum-id rule of §II-A, so membership must be a partition).
            for u in members:
                if u in covered:
                    raise HierarchyValidationError(
                        f"region {u!r} in clusters {covered[u]} and {c} at level {level}"
                    )
                covered[u] = c
                if h.cluster(u, level) != c:
                    raise HierarchyValidationError(
                        f"cluster({u!r},{level}) disagrees with membership of {c}"
                    )
            # Requirement 6: head is a member.
            if h.head(c) not in members:
                raise HierarchyValidationError(f"head of {c} is not a member")
            # Connectivity of the cluster in the region graph.
            _check_connected(h, c)
        if sorted(covered) != sorted(regions):
            raise HierarchyValidationError(f"level {level} does not cover all regions")

    # Requirement 5: same level-l cluster implies same level-(l+1) cluster.
    for level in range(h.max_level):
        for c in h.clusters_at_level(level):
            members = h.members(c)
            parents = {h.cluster(u, level + 1) for u in members}
            if len(parents) != 1:
                raise HierarchyValidationError(
                    f"members of {c} split across parents {sorted(parents)}"
                )
            parent = parents.pop()
            if h.parent(c) != parent:
                raise HierarchyValidationError(f"parent({c}) inconsistent")
            if c not in h.children(parent):
                raise HierarchyValidationError(f"{c} missing from children({parent})")


def _check_connected(h: ClusterHierarchy, c: ClusterId) -> None:
    members = h.members(c)
    member_set = set(members)
    seen = {members[0]}
    stack = [members[0]]
    while stack:
        cur = stack.pop()
        for nxt in h.tiling.neighbors(cur):
            if nxt in member_set and nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    if seen != member_set:
        raise HierarchyValidationError(f"cluster {c} is not connected")


def validate_geometry(h: ClusterHierarchy) -> None:
    """Geometry assumptions 2–5 of §II-B against declared ``n, p, q, ω``."""
    params = h.params
    params.validate()
    if params.max_level != h.max_level:
        raise HierarchyValidationError("params.max_level != hierarchy.max_level")
    tiling = h.tiling
    for level in h.levels():
        for c in h.clusters_at_level(level):
            nbrs = h.nbrs(c)
            if len(nbrs) > params.omega(level):
                raise HierarchyValidationError(
                    f"{c} has {len(nbrs)} neighbors > ω({level})={params.omega(level)}"
                )
            members = h.members(c)
            if level != h.max_level:
                for other in nbrs:
                    for u in members:
                        for v in h.members(other):
                            if tiling.distance(u, v) > params.n(level):
                                raise HierarchyValidationError(
                                    f"members {u!r},{v!r} of {c},{other} exceed n({level})"
                                )
                parent = h.parent(c)
                for u in members:
                    for v in h.members(parent):
                        if tiling.distance(u, v) > params.p(level):
                            raise HierarchyValidationError(
                                f"member {u!r} of {c} is >p({level}) from parent member {v!r}"
                            )
            allowed = set(members)
            for other in nbrs:
                allowed.update(h.members(other))
            radius = params.q(level)
            for v in tiling.regions():
                if v in allowed:
                    continue
                dist = min(tiling.distance(v, u) for u in members)
                if dist <= radius:
                    raise HierarchyValidationError(
                        f"region {v!r} within q({level})={radius} of {c} "
                        f"but outside the cluster and its neighbors"
                    )


def validate_proximity(h: ClusterHierarchy) -> None:
    """Proximity requirement (geometry assumption 1 of §II-B).

    For every descending chain ``c_l, …, c_k`` in which each ``c_j``
    (j < l) is contained in ``c_{j+1}`` or has a neighbor contained in
    ``c_{j+1}``, every region neighboring a member of ``c_k`` must have
    its level-``l`` cluster in ``{c_l} ∪ nbrs(c_l)``.

    We compute, per starting cluster ``c_l``, the set of clusters
    reachable by such chains (downward closure), then check the frontier
    condition for every reached cluster.
    """
    for l in range(1, h.max_level + 1):
        for top in h.clusters_at_level(l):
            allowed = {top} | set(h.nbrs(top))
            reached: Set[ClusterId] = {top}
            frontier: List[ClusterId] = [top]
            while frontier:
                nxt_frontier: List[ClusterId] = []
                for cj1 in frontier:
                    if cj1.level == 0:
                        continue
                    for child in h.children(cj1):
                        # chains extend to any cluster that is the child
                        # itself or a neighbor of a contained child
                        candidates = [child] + h.nbrs(child)
                        for cj in candidates:
                            if cj in reached:
                                continue
                            # cj qualifies iff cj or one of its neighbors is
                            # contained in cj1 — i.e. is a child of cj1.
                            if _qualifies(h, cj, cj1):
                                reached.add(cj)
                                nxt_frontier.append(cj)
                frontier = nxt_frontier
            for ck in reached:
                for u in h.members(ck):
                    for v in h.tiling.neighbors(u):
                        if h.cluster(v, l) not in allowed:
                            raise HierarchyValidationError(
                                f"proximity violated: chain from {top} reaches {ck}; "
                                f"region {v!r} (nbr of {u!r}) is in "
                                f"{h.cluster(v, l)} ∉ {{{top}}} ∪ nbrs"
                            )


def _qualifies(h: ClusterHierarchy, cj: ClusterId, cj1: ClusterId) -> bool:
    """True iff ``cj`` or one of its neighbors is a child of ``cj1``."""
    children = set(h.children(cj1))
    if cj in children:
        return True
    return any(nb in children for nb in h.nbrs(cj))


def validate_hierarchy(h: ClusterHierarchy, proximity: bool = True) -> None:
    """Run all validations (structure, geometry, optionally proximity)."""
    h.tiling.validate()
    validate_structure(h)
    validate_geometry(h)
    if proximity:
        validate_proximity(h)
