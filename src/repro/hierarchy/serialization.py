"""Serialization of tilings and hierarchies to/from JSON-able dicts.

Worlds are often built once (or produced by an external planner) and
reused across experiments; these helpers round-trip the supported
tilings and any :class:`~repro.hierarchy.hierarchy.ExplicitHierarchy`
(including grid, strip and agglomeratively built ones) through plain
dictionaries, so they can be stored as JSON files.

Region ids and cluster keys are encoded structurally: ints, strings and
(nested) lists/tuples of those survive the round-trip; tuples are
restored as tuples (JSON arrays are otherwise indistinguishable).
"""

from __future__ import annotations

import json
from typing import Any, Dict

from ..geometry.hex import HexTiling
from ..geometry.tiling import GraphTiling, GridTiling, Tiling
from ..geometry.points import Point
from .grid import GridHierarchy
from .hierarchy import ClusterHierarchy, ExplicitHierarchy
from .params import GeometryParams
from .strip import StripHierarchy


def _encode_key(value: Any) -> Any:
    if isinstance(value, tuple):
        return {"t": [_encode_key(v) for v in value]}
    if isinstance(value, list):
        return {"l": [_encode_key(v) for v in value]}
    return value


def _decode_key(value: Any) -> Any:
    if isinstance(value, dict) and "t" in value:
        return tuple(_decode_key(v) for v in value["t"])
    if isinstance(value, dict) and "l" in value:
        return [_decode_key(v) for v in value["l"]]
    return value


# ----------------------------------------------------------------------
# Tilings
# ----------------------------------------------------------------------
def tiling_to_dict(tiling: Tiling) -> Dict[str, Any]:
    """Serialize a tiling (grid/hex natively, anything else as a graph)."""
    if isinstance(tiling, GridTiling):
        return {"kind": "grid", "width": tiling.width, "height": tiling.height}
    if isinstance(tiling, HexTiling):
        return {"kind": "hex", "radius": tiling.radius}
    return {
        "kind": "graph",
        "adjacency": [
            [_encode_key(rid), [_encode_key(n) for n in tiling.neighbors(rid)]]
            for rid in tiling.regions()
        ],
        "centers": [
            [_encode_key(rid),
             [tiling.region(rid).center.x, tiling.region(rid).center.y]]
            for rid in tiling.regions()
        ],
    }


def tiling_from_dict(data: Dict[str, Any]) -> Tiling:
    kind = data.get("kind")
    if kind == "grid":
        return GridTiling(data["width"], data["height"])
    if kind == "hex":
        return HexTiling(data["radius"])
    if kind == "graph":
        adjacency = {
            _decode_key(rid): [_decode_key(n) for n in nbrs]
            for rid, nbrs in data["adjacency"]
        }
        centers = {
            _decode_key(rid): Point(x, y) for rid, (x, y) in data["centers"]
        }
        return GraphTiling(adjacency, centers)
    raise ValueError(f"unknown tiling kind {kind!r}")


# ----------------------------------------------------------------------
# Hierarchies
# ----------------------------------------------------------------------
def hierarchy_to_dict(hierarchy: ClusterHierarchy) -> Dict[str, Any]:
    """Serialize any hierarchy as explicit level maps + parameters."""
    level_maps = []
    for level in hierarchy.levels():
        level_maps.append(
            [
                [_encode_key(u), _encode_key(hierarchy.cluster(u, level).key)]
                for u in hierarchy.tiling.regions()
            ]
        )
    heads = [
        [[c.level, _encode_key(c.key)], _encode_key(hierarchy.head(c))]
        for c in hierarchy.all_clusters()
    ]
    params = hierarchy.params
    return {
        "tiling": tiling_to_dict(hierarchy.tiling),
        "level_maps": level_maps,
        "heads": heads,
        "params": {
            "max_level": params.max_level,
            "n": list(params.n_values),
            "p": list(params.p_values),
            "q": list(params.q_values),
            "omega": list(params.omega_values),
        },
        "grid_base": getattr(hierarchy, "r", None),
    }


def hierarchy_from_dict(data: Dict[str, Any]) -> ExplicitHierarchy:
    """Rebuild an :class:`ExplicitHierarchy` from :func:`hierarchy_to_dict`."""
    tiling = tiling_from_dict(data["tiling"])
    level_maps = [
        {_decode_key(u): _decode_key(key) for u, key in mapping}
        for mapping in data["level_maps"]
    ]
    p = data["params"]
    params = GeometryParams(
        p["max_level"], tuple(p["n"]), tuple(p["p"]),
        tuple(p["q"]), tuple(p["omega"]),
    )
    from .cluster import ClusterId

    heads = {
        ClusterId(level, _decode_key(key)): _decode_key(head)
        for (level, key), head in data["heads"]
    }
    hierarchy = ExplicitHierarchy(tiling, level_maps, params, heads=heads)
    if data.get("grid_base") is not None:
        hierarchy.r = data["grid_base"]  # restores schedule defaulting
    return hierarchy


def save_hierarchy(hierarchy: ClusterHierarchy, path: str) -> None:
    """Write a hierarchy (and its world) to a JSON file."""
    with open(path, "w") as handle:
        json.dump(hierarchy_to_dict(hierarchy), handle)


def load_hierarchy(path: str) -> ExplicitHierarchy:
    """Read a hierarchy back from :func:`save_hierarchy` output."""
    with open(path) as handle:
        return hierarchy_from_dict(json.load(handle))
