"""Base-``r`` grid hierarchy (§II-B example).

Unit squares are grouped into ``r × r`` level-1 blocks, those into
``r² × r²`` level-2 blocks, and so on up to a single level-MAX cluster.
Blocks sharing an edge or a corner are neighbors, so ``ω(l) = 8`` and the
closed forms ``MAX = ⌈log_r(D+1)⌉``, ``n(l) = 2r^l − 1``,
``p(l) = r^{l+1} − 1`` and ``q(l) = r^l`` hold.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional

from ..geometry.regions import RegionId
from ..geometry.tiling import GridTiling
from .cluster import ClusterId
from .hierarchy import ExplicitHierarchy, singleton_level_map
from .params import grid_params


class GridHierarchy(ExplicitHierarchy):
    """Hierarchical base-``r`` partition of a square :class:`GridTiling`.

    Args:
        tiling: A square grid tiling whose side is ``r ** max_level``.
        r: Grid base (block fan-out per axis), at least 2.

    The level-``l`` cluster of region ``(col, row)`` is the block
    ``(col // r^l, row // r^l)``.
    """

    def __init__(self, tiling: GridTiling, r: int) -> None:
        if r < 2:
            raise ValueError("grid base r must be >= 2")
        if tiling.width != tiling.height:
            raise ValueError("GridHierarchy requires a square tiling")
        side = tiling.width
        max_level = round(math.log(side, r))
        if r**max_level != side:
            raise ValueError(
                f"tiling side {side} is not a power of r={r}; "
                f"use grid_hierarchy(r, max_level) to build a matching world"
            )
        if max_level < 1:
            raise ValueError("side must be at least r (MAX > 0)")
        self.r = r

        level_maps: List[Dict[RegionId, Hashable]] = [singleton_level_map(tiling)]
        for level in range(1, max_level + 1):
            block = r**level
            level_maps.append(
                {u: (u[0] // block, u[1] // block) for u in tiling.regions()}
            )
        super().__init__(tiling, level_maps, grid_params(r, max_level))

    # Closed-form overrides (the generic versions are correct but slower).
    def cluster(self, u: RegionId, level: int) -> ClusterId:
        # Fast path: the explicit assignment map already interns one
        # ClusterId per (region, level); returning it keeps ids identical
        # (``is``) across the system, which downstream dict lookups and
        # equality checks exploit.
        cid = self._assignment.get((u, level))
        if cid is not None:
            return cid
        if not 0 <= level <= self.max_level:
            raise ValueError(f"level {level} outside 0..{self.max_level}")
        if level == 0:
            return ClusterId(0, u)
        block = self.r**level
        return ClusterId(level, (u[0] // block, u[1] // block))

    def parent(self, c: ClusterId) -> Optional[ClusterId]:
        if c.level == self.max_level:
            return None
        col, row = c.key  # level-0 keys are region ids, which are also pairs
        block = self.r ** (c.level + 1)
        anchor = ((col // self.r) * block, (row // self.r) * block)
        return self.cluster(anchor, c.level + 1)

    def nbrs(self, c: ClusterId) -> List[ClusterId]:
        """Closed-form block adjacency (≤ 8 neighbors on the grid).

        Equivalent to the generic member-boundary scan: full ``r^l``
        blocks share a boundary point exactly when their block coords
        differ by at most one per axis.
        """
        cached = self._nbrs_cache.get(c)
        if cached is None:
            block = self.r**c.level
            n_blocks = self.tiling.width // block
            bc, br = c.key  # level-0 keys are region ids: same shape
            out = []
            for dc in (-1, 0, 1):
                for dr in (-1, 0, 1):
                    if dc == 0 and dr == 0:
                        continue
                    oc, orow = bc + dc, br + dr
                    if 0 <= oc < n_blocks and 0 <= orow < n_blocks:
                        out.append(self.cluster((oc * block, orow * block), c.level))
            out.sort()
            self._nbrs_cache[c] = cached = out
        return list(cached)


def grid_hierarchy(r: int, max_level: int) -> GridHierarchy:
    """Build a fresh ``r^max_level``-sided grid world and its hierarchy."""
    if max_level < 1:
        raise ValueError("max_level must be >= 1")
    tiling = GridTiling(r**max_level)
    return GridHierarchy(tiling, r)


def diameter_of(hierarchy: GridHierarchy) -> int:
    """Network diameter ``D`` of the hierarchy's world."""
    return hierarchy.tiling.diameter()
