"""Geometry parameter functions ``n, p, q, ω`` (§II-B).

The paper characterises a clustering by four functions of the level:

* ``n(l)``  — max distance from a member of a level-l cluster to any
  member of a *neighboring* level-l cluster,
* ``p(l)``  — max distance from a member of a level-l cluster to any
  member of its level-(l+1) parent cluster,
* ``q(l)``  — coverage radius: every region within ``q(l)`` of a level-l
  cluster lies in that cluster or one of its neighbors,
* ``ω(l)``  — max number of neighbors of a level-l cluster.

:class:`GeometryParams` bundles concrete values and validates the
paper's standing assumptions; :func:`grid_params` produces the closed
forms of the base-``r`` grid example; :func:`tight_params` measures the
tight values of an arbitrary hierarchy by brute force (used by the
validation tests to confirm the closed forms are sound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class GeometryParams:
    """Concrete per-level geometry parameters.

    Values are stored for levels ``0 .. max_level``; ``n``/``p`` are only
    meaningful below ``max_level`` (there is no neighbor or parent at the
    top) but are stored with a final padded entry for uniform indexing.
    """

    max_level: int
    n_values: tuple
    p_values: tuple
    q_values: tuple
    omega_values: tuple

    def n(self, level: int) -> int:
        return self.n_values[self._check(level)]

    def p(self, level: int) -> int:
        return self.p_values[self._check(level)]

    def q(self, level: int) -> int:
        return self.q_values[self._check(level)]

    def omega(self, level: int) -> int:
        return self.omega_values[self._check(level)]

    def _check(self, level: int) -> int:
        if not 0 <= level <= self.max_level:
            raise ValueError(f"level {level} outside 0..{self.max_level}")
        return level

    def validate(self) -> None:
        """Check the standing assumptions of §II-B.

        Raises:
            ValueError: on any violated assumption, naming it.
        """
        if self.max_level < 1:
            raise ValueError("MAX must be > 0")
        sizes = {
            "n": len(self.n_values),
            "p": len(self.p_values),
            "q": len(self.q_values),
            "omega": len(self.omega_values),
        }
        for name, size in sizes.items():
            if size != self.max_level + 1:
                raise ValueError(f"{name}_values must have MAX+1 entries, got {size}")
        if self.q_values[0] != 1:
            raise ValueError(f"q(0) must be 1, got {self.q_values[0]}")
        for l in range(self.max_level):
            if self.q_values[l] > self.n_values[l]:
                raise ValueError(f"q({l}) > n({l})")
            if l + 1 <= self.max_level - 1 and self.n_values[l] > self.n_values[l + 1]:
                raise ValueError(f"n({l}) > n({l + 1})")
            if l + 1 <= self.max_level - 1 and self.p_values[l] > self.p_values[l + 1]:
                raise ValueError(f"p({l}) > p({l + 1})")
            if l + 1 <= self.max_level - 1 and self.p_values[l] > self.n_values[l + 1]:
                raise ValueError(f"p({l}) > n({l + 1})")
            if l >= 1 and 2 * self.q_values[l - 1] > self.q_values[l]:
                raise ValueError(f"2*q({l - 1}) > q({l})")


def grid_params(r: int, max_level: int) -> GeometryParams:
    """Closed-form parameters for the base-``r`` grid hierarchy (§II-B).

    ``n(l) = 2r^l − 1``, ``p(l) = r^{l+1} − 1``, ``q(l) = r^l``,
    ``ω(l) = 8``.
    """
    if r < 2:
        raise ValueError("grid base r must be >= 2")
    if max_level < 1:
        raise ValueError("MAX must be > 0")
    levels = range(max_level + 1)
    n_vals = tuple(2 * r**l - 1 for l in levels)
    p_vals = tuple(r ** (l + 1) - 1 for l in levels)
    q_vals = tuple(r**l for l in levels)
    omega_vals = tuple(8 for _ in levels)
    params = GeometryParams(max_level, n_vals, p_vals, q_vals, omega_vals)
    params.validate()
    return params


def tight_params(hierarchy) -> GeometryParams:
    """Measure the tight ``n, p, q, ω`` of a hierarchy by brute force.

    Intended for validation on small hierarchies: cost is roughly
    ``O(|U|^2 · MAX)``.

    Args:
        hierarchy: A :class:`~repro.hierarchy.hierarchy.ClusterHierarchy`.
    """
    tiling = hierarchy.tiling
    max_level = hierarchy.max_level
    regions = tiling.regions()

    n_vals: List[int] = []
    p_vals: List[int] = []
    q_vals: List[int] = []
    omega_vals: List[int] = []
    for level in range(max_level + 1):
        clusters = hierarchy.clusters_at_level(level)
        omega_vals.append(
            max((len(hierarchy.nbrs(c)) for c in clusters), default=0)
        )
        n_best = 0
        p_best = 0
        q_best_candidates: List[int] = []
        for c in clusters:
            members = hierarchy.members(c)
            if level != max_level:
                for other in hierarchy.nbrs(c):
                    for u in members:
                        for v in hierarchy.members(other):
                            n_best = max(n_best, tiling.distance(u, v))
                parent = hierarchy.parent(c)
                for u in members:
                    for v in hierarchy.members(parent):
                        p_best = max(p_best, tiling.distance(u, v))
            # q(l): the largest radius such that every region within it is
            # in c or a neighbor of c.
            allowed = set(members)
            for other in hierarchy.nbrs(c):
                allowed.update(hierarchy.members(other))
            min_outside = None
            for v in regions:
                if v in allowed:
                    continue
                dist = min(tiling.distance(v, u) for u in members)
                if min_outside is None or dist < min_outside:
                    min_outside = dist
            if min_outside is not None:
                q_best_candidates.append(min_outside - 1)
        n_vals.append(n_best)
        p_vals.append(p_best)
        if q_best_candidates:
            q_vals.append(max(min(q_best_candidates), 1 if level == 0 else 0))
        else:
            # Cluster plus neighbors covers everything: radius is unbounded;
            # cap at the diameter.
            q_vals.append(tiling.diameter())
    return GeometryParams(
        max_level, tuple(n_vals), tuple(p_vals), tuple(q_vals), tuple(omega_vals)
    )
