"""Base-``r`` strip hierarchy over a line tiling.

The paper's contribution includes *generalizing* STALK's cluster
definitions: any clustering satisfying §II-B works, not just grids.
This module provides a second concrete hierarchy — segments of a 1-D
corridor (a road, a pipeline, a border fence) — exercising that
generality: level-``l`` clusters are segments of ``r^l`` consecutive
regions, each segment has at most two neighbors (``ω(l) = 2``), and

    ``n(l) = 2r^l − 1``,  ``p(l) = r^{l+1} − 1``,  ``q(l) = r^l``.

Because :class:`StripHierarchy` exposes a grid-style base ``r``, the
default Eq. (1) timer schedule applies unchanged, and the full VINESTALK
stack runs on it without modification (see the strip integration tests).
"""

from __future__ import annotations

from typing import Dict, Hashable, List

from ..geometry.regions import RegionId
from ..geometry.tiling import GraphTiling, line_tiling
from .hierarchy import ExplicitHierarchy, singleton_level_map
from .params import GeometryParams


def strip_params(r: int, max_level: int) -> GeometryParams:
    """Closed-form §II-B parameters of the base-``r`` strip."""
    if r < 2:
        raise ValueError("strip base r must be >= 2")
    if max_level < 1:
        raise ValueError("MAX must be > 0")
    levels = range(max_level + 1)
    params = GeometryParams(
        max_level,
        tuple(2 * r**l - 1 for l in levels),
        tuple(r ** (l + 1) - 1 for l in levels),
        tuple(r**l for l in levels),
        tuple(2 for _ in levels),
    )
    params.validate()
    return params


class StripHierarchy(ExplicitHierarchy):
    """Hierarchical base-``r`` segmentation of a line of ``r^max_level`` regions."""

    def __init__(self, tiling: GraphTiling, r: int) -> None:
        if r < 2:
            raise ValueError("strip base r must be >= 2")
        regions = tiling.regions()
        length = len(regions)
        max_level = 0
        size = 1
        while size < length:
            size *= r
            max_level += 1
        if size != length:
            raise ValueError(
                f"strip length {length} is not a power of r={r}; "
                f"use strip_hierarchy(r, max_level)"
            )
        if max_level < 1:
            raise ValueError("length must be at least r (MAX > 0)")
        self.r = r
        level_maps: List[Dict[RegionId, Hashable]] = [singleton_level_map(tiling)]
        for level in range(1, max_level + 1):
            segment = r**level
            level_maps.append({u: u // segment for u in regions})
        super().__init__(tiling, level_maps, strip_params(r, max_level))


def strip_hierarchy(r: int, max_level: int) -> StripHierarchy:
    """Build a fresh ``r^max_level``-region corridor and its hierarchy."""
    if max_level < 1:
        raise ValueError("max_level must be >= 1")
    return StripHierarchy(line_tiling(r**max_level), r)
