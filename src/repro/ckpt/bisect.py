"""Divergence bisection: localize where two "identical" runs split.

A golden mismatch ("cache-on differs from cache-off", "obs-on differs
from obs-off", "these two seeds should match") historically meant
staring at full traces.  :func:`bisect_divergence` turns it into one
call: it replays the canonical tracked walk under two :class:`Variant`
environments in interleaved windows, folding a rolling per-event
fingerprint on each side and checkpointing at every window boundary.
When a window's fingerprints disagree, the first diverging event inside
it is binary-searched from the recorded fingerprints, both sides are
**restored from the last agreeing checkpoint** and stepped to the exact
boundary, and the report carries the diverging event's time, tag and
trace records from each side — live state at the split, not a log dump.

Rolling fingerprint: per fired event, fold the post-event clock and
every trace record the event emitted into a CRC.  Equal prefixes ⇒
equal CRC sequences; after the first divergence the CRCs stay different
(rolling), which is what makes the binary search valid.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..faults.plan import CHANNEL_BOTH, FaultPlan, MessageLoss
from ..scenario import Scenario, ScenarioConfig
from ..topo import cache_enabled, set_cache_enabled
from .snapshot import Snapshot, restore_scenario, snapshot_scenario
from .workload import build_tracked_walk, walk_horizon


# ----------------------------------------------------------------------
# Variants: the environment/config axis being compared
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Variant:
    """One side of a bisection: config/environment deltas to apply.

    Attributes:
        cache: Force the topology cache on/off (None = leave as is).
        obs: Run with observability enabled.
        seed: Override the scenario seed.
        loss: Add a ``MessageLoss`` fault plan at this rate (both
            channels, unbounded horizon).
    """

    cache: Optional[bool] = None
    obs: bool = False
    seed: Optional[int] = None
    loss: Optional[float] = None

    @classmethod
    def parse(cls, spec: str) -> "Variant":
        """Parse ``"cache:off,obs:on,seed:6,loss:0.3"`` (order-free).

        An empty spec (or ``"base"``) is the unmodified baseline.
        """
        kwargs: Dict[str, Any] = {}
        spec = spec.strip()
        if spec and spec != "base":
            for token in spec.split(","):
                key, sep, value = token.strip().partition(":")
                if not sep:
                    raise ValueError(f"variant token {token!r} is not key:value")
                if key in ("cache", "obs"):
                    if value not in ("on", "off"):
                        raise ValueError(f"{key} must be on/off, got {value!r}")
                    kwargs[key] = value == "on"
                elif key == "seed":
                    kwargs[key] = int(value)
                elif key == "loss":
                    kwargs[key] = float(value)
                else:
                    raise ValueError(
                        f"unknown variant key {key!r} "
                        "(expected cache/obs/seed/loss)"
                    )
        return cls(**kwargs)

    def apply(self, config: ScenarioConfig) -> ScenarioConfig:
        """The scenario config for this side."""
        if self.seed is not None:
            config = config.with_(seed=self.seed)
        if self.loss is not None:
            config = config.with_(
                fault_plan=FaultPlan.of(
                    MessageLoss(rate=self.loss, channel=CHANNEL_BOTH)
                )
            )
        return config

    def describe(self) -> str:
        parts = []
        if self.cache is not None:
            parts.append(f"cache:{'on' if self.cache else 'off'}")
        if self.obs:
            parts.append("obs:on")
        if self.seed is not None:
            parts.append(f"seed:{self.seed}")
        if self.loss is not None:
            parts.append(f"loss:{self.loss}")
        return ",".join(parts) or "base"


class _Env:
    """Per-side global toggles, activated only while that side steps.

    The cache flag and the obs gate are process globals, so interleaved
    windows swap them in and out around each side's turn.
    """

    def __init__(self, variant: Variant) -> None:
        self.variant = variant
        self._saved: Optional[tuple] = None
        self._collector = None

    def __enter__(self) -> "_Env":
        from ..obs._state import OBS

        self._saved = (
            cache_enabled(),
            OBS.spans_enabled,
            OBS.events_enabled,
            OBS.collector,
        )
        if self.variant.cache is not None:
            set_cache_enabled(self.variant.cache)
        if self.variant.obs:
            if self._collector is None:
                from ..obs.collector import ObsCollector

                self._collector = ObsCollector()
            OBS.spans_enabled = True
            OBS.events_enabled = True
            OBS.collector = self._collector
        else:
            OBS.spans_enabled = False
            OBS.events_enabled = False
            OBS.collector = None
        return self

    def __exit__(self, *exc) -> None:
        from ..obs._state import OBS

        cache_on, spans, events, collector = self._saved
        set_cache_enabled(cache_on)
        OBS.spans_enabled = spans
        OBS.events_enabled = events
        OBS.collector = collector


# ----------------------------------------------------------------------
# One recorded side
# ----------------------------------------------------------------------
@dataclass
class _EventInfo:
    """What one fired event did (the report's divergence evidence)."""

    time: float
    tag: Optional[str]
    records: Tuple[tuple, ...]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "time": self.time,
            "tag": self.tag,
            "trace_records": [list(rec) for rec in self.records],
        }


class _Side:
    """One variant's run: stepping, rolling CRCs, window checkpoints."""

    def __init__(
        self, config: ScenarioConfig, variant: Variant, moves: int
    ) -> None:
        self.env = _Env(variant)
        self.variant = variant
        with self.env:
            self.scenario: Scenario = build_tracked_walk(
                variant.apply(config), moves=moves
            )
        self.crc = 0
        self.window_fps: List[int] = []
        self.events = 0
        self._trace_pos = 0
        self.checkpoint: Snapshot = self._snapshot()
        self.checkpoint_events = 0
        self.checkpoints_taken = 1

    def _snapshot(self) -> Snapshot:
        return snapshot_scenario(self.scenario)

    def _fold_event(self) -> None:
        sim = self.scenario.sim
        crc = zlib.crc32(repr(sim.now).encode("utf-8"), self.crc)
        records = list(sim.trace)
        for rec in records[self._trace_pos:]:
            crc = zlib.crc32(
                repr((rec.time, rec.source, rec.kind, rec.detail)).encode(
                    "utf-8"
                ),
                crc,
            )
        self._trace_pos = len(records)
        self.crc = crc

    def run_window(self, window: int, until: float) -> int:
        """Fire up to ``window`` events under this side's env.

        Appends one rolling fingerprint per fired event to
        ``window_fps`` (cleared first) and returns how many fired.
        """
        self.window_fps.clear()
        sim = self.scenario.sim
        with self.env:
            for _ in range(window):
                if not sim.step(until=until):
                    break
                self._fold_event()
                self.window_fps.append(self.crc)
        self.events += len(self.window_fps)
        return len(self.window_fps)

    def take_checkpoint(self) -> None:
        self.checkpoint = self._snapshot()
        self.checkpoint_events = self.events
        self.checkpoints_taken += 1

    def replay_to(self, offset: int) -> Tuple[Scenario, Optional[_EventInfo]]:
        """Restore the window checkpoint and step ``offset + 1`` events.

        Returns the restored scenario positioned right after the event
        at ``offset`` (0-based within the window) plus that event's
        :class:`_EventInfo`.
        """
        restored = restore_scenario(self.checkpoint).scenario
        sim = restored.sim
        info: Optional[_EventInfo] = None
        with self.env:
            for k in range(offset + 1):
                trace_before = len(sim.trace)
                head = sim._queue.peek_time()
                if head is None or not sim.step():
                    break
                if k == offset:
                    records = tuple(
                        (rec.time, rec.source, rec.kind, repr(rec.detail))
                        for rec in list(sim.trace)[trace_before:]
                    )
                    info = _EventInfo(time=sim.now, tag=None, records=records)
        return restored, info


# ----------------------------------------------------------------------
# The bisection
# ----------------------------------------------------------------------
@dataclass
class DivergenceReport:
    """Outcome of one bisection."""

    diverged: bool
    variant_a: str
    variant_b: str
    event_index: Optional[int] = None
    events_compared: int = 0
    checkpoints: int = 0
    window: int = 0
    event_a: Optional[_EventInfo] = None
    event_b: Optional[_EventInfo] = None
    fingerprint_a: int = 0
    fingerprint_b: int = 0
    note: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {
            "diverged": self.diverged,
            "variant_a": self.variant_a,
            "variant_b": self.variant_b,
            "event_index": self.event_index,
            "events_compared": self.events_compared,
            "checkpoints": self.checkpoints,
            "window": self.window,
            "event_a": None if self.event_a is None else self.event_a.as_dict(),
            "event_b": None if self.event_b is None else self.event_b.as_dict(),
            "fingerprint_a": self.fingerprint_a,
            "fingerprint_b": self.fingerprint_b,
            "note": self.note,
        }


def _first_mismatch(a: List[int], b: List[int], n: int) -> int:
    """Binary-search the first index < n where the CRC sequences differ.

    Valid because a rolling CRC sequence is prefix-stable: once the
    sides diverge, every later fingerprint differs too — mismatch is a
    monotone predicate over the index.
    """
    lo, hi = 0, n - 1  # invariant: mismatch exists in [lo, hi]
    while lo < hi:
        mid = (lo + hi) // 2
        if a[mid] != b[mid]:
            hi = mid
        else:
            lo = mid + 1
    return lo


def bisect_divergence(
    config: ScenarioConfig,
    variant_a: Variant,
    variant_b: Variant,
    moves: int = 5,
    until: Optional[float] = None,
    window: int = 256,
    max_events: int = 1_000_000,
) -> DivergenceReport:
    """Replay ``config`` under two variants and localize their split.

    Both sides run the canonical tracked walk to ``until`` (default:
    the walk's settle horizon).  Execution interleaves in ``window``-
    event slices with a checkpoint at each window boundary; the first
    window whose fingerprints disagree is bisected, both sides are
    restored from their last agreeing checkpoint, and the report pins
    the first diverging event (0-based global index) with each side's
    view of it.
    """
    if until is None:
        until = walk_horizon(moves)
    side_a = _Side(config, variant_a, moves)
    side_b = _Side(config, variant_b, moves)
    report = DivergenceReport(
        diverged=False,
        variant_a=variant_a.describe(),
        variant_b=variant_b.describe(),
        window=window,
    )

    while side_a.events < max_events:
        fired_a = side_a.run_window(window, until)
        fired_b = side_b.run_window(window, until)
        compared = min(fired_a, fired_b)
        report.events_compared += compared
        fps_a, fps_b = side_a.window_fps, side_b.window_fps
        if fps_a[:compared] != fps_b[:compared]:
            offset = _first_mismatch(fps_a, fps_b, compared)
            scenario_a, event_a = side_a.replay_to(offset)
            scenario_b, event_b = side_b.replay_to(offset)
            report.diverged = True
            report.event_index = side_a.events - fired_a + offset
            report.checkpoints = (
                side_a.checkpoints_taken + side_b.checkpoints_taken
            )
            report.event_a = event_a
            report.event_b = event_b
            report.fingerprint_a = fps_a[offset]
            report.fingerprint_b = fps_b[offset]
            report.note = (
                f"first divergence at event {report.event_index} "
                f"(window offset {offset}); replayed from checkpoints at "
                f"event {side_a.checkpoint_events}"
            )
            return report
        if fired_a != fired_b:
            # Equal prefixes but one side ran out of events first: the
            # divergence is the extra event itself.
            longer = side_a if fired_a > fired_b else side_b
            offset = compared
            scenario_x, event_x = longer.replay_to(offset)
            report.diverged = True
            report.event_index = longer.events - max(fired_a, fired_b) + offset
            report.checkpoints = (
                side_a.checkpoints_taken + side_b.checkpoints_taken
            )
            if longer is side_a:
                report.event_a = event_x
            else:
                report.event_b = event_x
            report.note = (
                f"sides fired different event counts "
                f"({fired_a} vs {fired_b} in the final window)"
            )
            return report
        if fired_a == 0:
            break  # both drained, no divergence
        side_a.take_checkpoint()
        side_b.take_checkpoint()

    report.checkpoints = side_a.checkpoints_taken + side_b.checkpoints_taken
    report.fingerprint_a = side_a.crc
    report.fingerprint_b = side_b.crc
    report.note = (
        f"no divergence over {report.events_compared} compared events"
    )
    return report
