"""Checkpoint/restore and deterministic replay (the ``ckpt/1`` format).

The subsystem in one paragraph: :func:`snapshot_scenario` captures a
built scenario between two events as a versioned, picklable
:class:`Snapshot` whose payload references the content-addressed
topology cache instead of re-serializing route tables;
:func:`restore_scenario` (and the on-disk :func:`save`/:func:`load`
envelope) turns it back into a fresh continuation that resumes
bit-identically to the uninterrupted run; :func:`fork_scenario` spins N
deterministic divergent continuations off one snapshot;
:mod:`~repro.ckpt.depot` feeds ``SweepRunner`` warm starts; and
:func:`~repro.ckpt.bisect.bisect_divergence` localizes the first
diverging event between two run variants via interleaved checkpoints.

See ``DESIGN.md`` §7 for the guarantees and the format layout.
"""

from .bisect import DivergenceReport, Variant, bisect_divergence
from .codec import CkptCodecError, dumps_graph, loads_graph
from .fork import fork_scenario
from .snapshot import (
    CKPT_MAGIC,
    CKPT_SCHEMA,
    CkptCompatError,
    CkptFormatError,
    Restored,
    Snapshot,
    SnapshotMeta,
    load,
    restore_scenario,
    save,
    snapshot_scenario,
    trace_fingerprint,
)
from .workload import (
    FIND_AT,
    MOVE_EVERY,
    build_tracked_walk,
    schedule_tracked_walk,
    walk_horizon,
)

__all__ = [
    "CKPT_MAGIC",
    "CKPT_SCHEMA",
    "CkptCodecError",
    "CkptCompatError",
    "CkptFormatError",
    "DivergenceReport",
    "FIND_AT",
    "MOVE_EVERY",
    "Restored",
    "Snapshot",
    "SnapshotMeta",
    "Variant",
    "bisect_divergence",
    "build_tracked_walk",
    "dumps_graph",
    "fork_scenario",
    "load",
    "loads_graph",
    "restore_scenario",
    "save",
    "schedule_tracked_walk",
    "snapshot_scenario",
    "trace_fingerprint",
    "walk_horizon",
]
