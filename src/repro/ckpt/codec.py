"""Graph serialization for checkpoints (cloudpickle + topo references).

A simulation checkpoint must capture closures: the event queue holds
lambdas and bound methods whose cells reference trackers, injectors and
evaders.  Plain :mod:`pickle` refuses lambdas, so the codec pickles with
:mod:`cloudpickle` — function objects travel by value, and the pickle
memo keeps every shared object (the simulator, the trace, each tracker)
a single instance in the restored graph.

On top of that, the codec teaches the pickler about the content-addressed
topology layer: a hierarchy (or its tiling) that lives in the per-process
:class:`~repro.topo.cache.TopologyCache` is written as a **persistent
reference** — its :class:`~repro.topo.keys.TopologyKey` — instead of by
value.  Restoring resolves the key through the restoring process's own
cache, rebuilding on a cold cache.  That keeps payloads small and, more
importantly, never re-serializes the precomputed route tables and
distance partitions riding on cached tilings: they are derived data the
target process can recompute (or already has).

Hierarchies handed in explicitly (``ScenarioConfig(hierarchy=...)``) are
not cache content and fall back to by-value serialization.
"""

from __future__ import annotations

import io
import pickle
from typing import Any, Dict, List, Optional, Tuple

import cloudpickle

from ..topo import topology_cache
from ..topo.keys import TopologyKey


class CkptCodecError(RuntimeError):
    """Raised when a checkpoint payload cannot be encoded or decoded."""


def _cache_identity_map() -> Dict[int, Tuple[str, TopologyKey]]:
    """Map ``id(object) -> persistent tag`` for every cached topology.

    Both the hierarchy object and its tiling get a tag: simulation
    components reference either (routers hold the tiling directly), and
    intercepting the tiling is what keeps its ``_repro_route_table`` /
    ``_repro_distance_table`` memo attributes out of the payload.
    """
    mapping: Dict[int, Tuple[str, TopologyKey]] = {}
    for key, hierarchy in topology_cache()._hierarchies.items():
        mapping[id(hierarchy)] = ("hierarchy", key)
        tiling = getattr(hierarchy, "tiling", None)
        if tiling is not None:
            mapping[id(tiling)] = ("tiling", key)
    return mapping


class _GraphPickler(cloudpickle.CloudPickler):
    """CloudPickler emitting topo-cache persistent references."""

    def __init__(self, file: io.BytesIO) -> None:
        super().__init__(file, protocol=pickle.DEFAULT_PROTOCOL)
        self._topo_identity = _cache_identity_map()
        self.topo_keys: List[TopologyKey] = []

    def persistent_id(self, obj: Any) -> Optional[tuple]:
        tag = self._topo_identity.get(id(obj))
        if tag is None:
            return None
        kind, key = tag
        if key not in self.topo_keys:
            self.topo_keys.append(key)
        return ("repro.topo", kind, key)


class _GraphUnpickler(pickle.Unpickler):
    """Unpickler resolving topo references through the local cache."""

    def persistent_load(self, pid: tuple) -> Any:
        try:
            namespace, kind, key = pid
        except (TypeError, ValueError):  # pragma: no cover - defensive
            raise CkptCodecError(f"malformed persistent id {pid!r}") from None
        if namespace != "repro.topo" or kind not in ("hierarchy", "tiling"):
            raise CkptCodecError(f"unknown persistent id {pid!r}")
        hierarchy = topology_cache().hierarchy(key)
        return hierarchy if kind == "hierarchy" else hierarchy.tiling


def dumps_graph(graph: Any) -> Tuple[bytes, Tuple[TopologyKey, ...]]:
    """Serialize an object graph; returns ``(payload, topo_keys)``.

    ``topo_keys`` lists every topology the payload references instead of
    embedding — the restoring process needs them resolvable (its cache
    rebuilds them on demand, so the list is informational: it lets warm
    paths pre-build before restore).
    """
    buffer = io.BytesIO()
    pickler = _GraphPickler(buffer)
    try:
        pickler.dump(graph)
    except Exception as exc:
        raise CkptCodecError(f"checkpoint payload not picklable: {exc}") from exc
    return buffer.getvalue(), tuple(pickler.topo_keys)


def loads_graph(payload: bytes) -> Any:
    """Restore a :func:`dumps_graph` payload into a fresh object graph."""
    try:
        return _GraphUnpickler(io.BytesIO(payload)).load()
    except CkptCodecError:
        raise
    except Exception as exc:
        raise CkptCodecError(f"checkpoint payload corrupt: {exc}") from exc
