"""The per-process warm-scenario depot (``SweepRunner`` warm starts).

A sweep whose jobs share a warm-up — build the world, attach the
evader, run to quiescence — historically repaid that prefix per job.
The depot stores the post-warm-up state once, as serialized snapshot
payloads keyed by a picklable warm key, and hands each job a fresh
restored copy:

* in the parent / serial path, :func:`checkout_or_build` deposits on
  first use and restores on every later hit;
* in the parallel path, :class:`~repro.analysis.parallel.SweepRunner`
  pre-builds the sweep's distinct warm bases, ships the payload dict to
  the pool initializer (:func:`seed`), and workers restore per job.

Restore and deposit time is charged through
:func:`repro.topo.charge_setup`, so it lands in the existing
``JobResult`` setup/run wall split with no new accounting.

Like the topology cache, the depot is per-process state: payloads are
bytes (each checkout unpickles a disjoint graph), so jobs can never
leak mutations into each other through it.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Optional, Tuple

from ..topo import charge_setup
from .codec import dumps_graph, loads_graph

_DEPOT: Dict[Hashable, bytes] = {}


def deposit(key: Hashable, graph: Any) -> bytes:
    """Serialize ``graph`` under ``key``; returns the payload bytes."""
    payload, _ = dumps_graph(graph)
    _DEPOT[key] = payload
    return payload


def seed(entries: Dict[Hashable, bytes]) -> None:
    """Install pre-serialized payloads (the pool-initializer path)."""
    _DEPOT.update(entries)


def checkout(key: Hashable) -> Optional[Any]:
    """A fresh restored copy of the deposit under ``key`` (None on miss).

    Restore time is charged as setup wall.
    """
    payload = _DEPOT.get(key)
    if payload is None:
        return None
    with charge_setup():
        return loads_graph(payload)


def checkout_or_build(key: Hashable, builder: Callable[[], Any]) -> Any:
    """Restore the deposit under ``key``, building and depositing on miss.

    The builder runs outside the setup charge (its own internals charge
    what they always charged); only the serialize/restore work this
    module adds is billed as setup.
    """
    graph = checkout(key)
    if graph is not None:
        return graph
    graph = builder()
    with charge_setup():
        deposit(key, graph)
    return graph


def ensure(key: Hashable, builder: Callable[[], Any]) -> None:
    """Build and deposit under ``key`` unless already deposited.

    The parent-side warm-up path: no restore happens here, so the sweep
    runner can pre-populate the depot without paying a checkout per key.
    """
    if key in _DEPOT:
        return
    graph = builder()
    with charge_setup():
        deposit(key, graph)


def entries() -> Dict[Hashable, bytes]:
    """The raw payload dict (what the sweep runner ships to workers)."""
    return dict(_DEPOT)


def clear() -> None:
    """Drop every deposit (tests and cross-sweep hygiene)."""
    _DEPOT.clear()
