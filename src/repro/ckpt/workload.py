"""The canonical replayable workload behind ``repro snapshot/resume/bisect``.

One seeded, fully scheduled tracked walk: moves on a fixed timer, one
find late in the run, everything placed on the event queue up front so
the *entire* remaining workload is part of any snapshot taken mid-run.
The golden suites and the CLI replay tooling all drive this shape, so a
``repro snapshot`` taken at any cut point resumes through ``repro
resume`` with no out-of-band driver state.
"""

from __future__ import annotations

import random
from typing import Optional

from ..mobility.models import RandomNeighborWalk
from ..scenario import Scenario, ScenarioConfig, build

#: Default spacing of the scheduled moves (sim time).
MOVE_EVERY = 10.0

#: Default sim time at which the one find is issued.
FIND_AT = 55.0


def schedule_tracked_walk(
    scenario: Scenario,
    moves: int = 5,
    move_every: float = MOVE_EVERY,
    find_at: Optional[float] = FIND_AT,
):
    """Attach an evader and schedule the canonical workload onto it.

    Moves fire at ``move_every * k`` (k = 1..moves); when ``find_at`` is
    given, a find from the corner region is scheduled there.  The walk
    RNG is seeded from ``scenario.config.seed``.  Returns the evader.
    """
    system = scenario.system
    regions = system.hierarchy.tiling.regions()
    center = regions[len(regions) // 2]
    evader = system.make_evader(
        RandomNeighborWalk(start=center),
        dwell=1e12,
        start=center,
        rng=random.Random(scenario.config.seed),
    )
    for k in range(1, moves + 1):
        system.sim.call_at(move_every * k, evader.step, tag="walk-move")
    if find_at is not None:
        system.sim.call_at(
            find_at, lambda: system.issue_find(regions[0]), tag="walk-find"
        )
    return evader


def walk_horizon(moves: int, move_every: float = MOVE_EVERY) -> float:
    """Sim time by which the whole scheduled walk has settled."""
    return move_every * (moves + 2)


def build_tracked_walk(config: ScenarioConfig, moves: int = 5) -> Scenario:
    """Build ``config`` (trace forced on) with the walk scheduled."""
    scenario = build(config.with_(trace=True))
    schedule_tracked_walk(scenario, moves=moves)
    return scenario
