"""Fork semantics: one snapshot → N divergent continuations.

:func:`fork_scenario` restores a snapshot (a fresh, disjoint object
graph per call) and then extends every named-stream RNG registry in the
continuation by the fork index — injector streams restart from seeds
derived deterministically from ``(root seed, fork path, stream name)``
(see :meth:`repro.sim.rng.RngRegistry.fork`).  The same snapshot forked
with the same index is therefore bit-identical every time, while
different indices draw provably different randomness from the first
post-fork draw on.

What forks: every :class:`~repro.sim.rng.RngRegistry` reachable as the
fault injector's streams or carried in the snapshot extras.  Plain
``random.Random`` objects the caller embedded (e.g. an evader's walk
RNG) are the caller's to perturb — they restore to their captured
mid-sequence position in every fork, which keeps a fork's divergence
exactly scoped to the registry-managed streams.
"""

from __future__ import annotations

from typing import Iterator

from ..sim.rng import RngRegistry
from .snapshot import Restored, Snapshot, restore_scenario


def _registries_of(restored: Restored) -> Iterator[RngRegistry]:
    injector = restored.scenario.injector
    if injector is not None and isinstance(
        getattr(injector, "streams", None), RngRegistry
    ):
        yield injector.streams
    for value in restored.extras.values():
        if isinstance(value, RngRegistry):
            yield value


def fork_scenario(snapshot: Snapshot, index: int) -> Restored:
    """Restore ``snapshot`` as fork ``index`` of its continuation.

    Returns a :class:`~repro.ckpt.snapshot.Restored` whose RNG
    registries have been forked by ``index``.  Restoring N forks gives N
    fully independent object graphs; forks with equal indices replay
    identically, forks with different indices diverge at their first
    registry draw.
    """
    restored = restore_scenario(snapshot)
    for registry in _registries_of(restored):
        registry.fork(index)
    return restored
