"""The versioned ``ckpt/1`` snapshot format.

A :class:`Snapshot` captures a built scenario — event queue with
tie-break counters, every RNG stream position, tracker/VSA/client
automata state, fault-injector arming, geocast in-flight messages, the
trace — between two simulation events, as one
:func:`~repro.ckpt.codec.dumps_graph` payload plus a small typed header:

* ``meta`` — schema tag, simulation time, events fired, the topology
  keys the payload references instead of embedding, a SHA-256 payload
  fingerprint and the Python version the payload's code objects target;
* ``config`` — the :class:`~repro.scenario.ScenarioConfig` the world was
  built from, readable without touching the payload (compat checks);
* ``payload`` — the pickled object graph: ``(scenario, extras)``.

The on-disk envelope is a magic line, a JSON header and the two pickle
sections; :func:`load` verifies magic, schema, Python version and the
payload fingerprint *before* unpickling anything, and raises a typed
error on any mismatch.

The golden guarantee (enforced by ``tests/ckpt``): *snapshot at t, then
resume* produces a run bit-identical — :func:`trace_fingerprint` and
result objects — to the uninterrupted run, with observability on or off.
"""

from __future__ import annotations

import hashlib
import json
import struct
import sys
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from ..scenario import Scenario
from ..topo.keys import TopologyKey
from .codec import dumps_graph, loads_graph

#: Schema tag of the snapshot format.  Bump on any envelope or payload
#: layout change; :func:`load` refuses other schemas outright.
CKPT_SCHEMA = "ckpt/1"

#: First bytes of every checkpoint file.
CKPT_MAGIC = b"repro-ckpt\n"


class CkptFormatError(RuntimeError):
    """The file is not a readable checkpoint of this schema."""


class CkptCompatError(RuntimeError):
    """The checkpoint is readable but incompatible with this process."""


@dataclass(frozen=True)
class SnapshotMeta:
    """Typed header of one snapshot (JSON-safe fields only)."""

    schema: str
    sim_time: float
    events_fired: int
    topo_keys: Tuple[TopologyKey, ...]
    fingerprint: str
    python: str
    note: str = ""

    def as_json_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "sim_time": self.sim_time,
            "events_fired": self.events_fired,
            "topo_keys": [
                {"kind": k.kind, "r": k.r, "max_level": k.max_level}
                for k in self.topo_keys
            ],
            "fingerprint": self.fingerprint,
            "python": self.python,
            "note": self.note,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "SnapshotMeta":
        return cls(
            schema=data["schema"],
            sim_time=data["sim_time"],
            events_fired=data["events_fired"],
            topo_keys=tuple(
                TopologyKey(k["kind"], k["r"], k["max_level"])
                for k in data["topo_keys"]
            ),
            fingerprint=data["fingerprint"],
            python=data["python"],
            note=data.get("note", ""),
        )


@dataclass(frozen=True)
class Snapshot:
    """One ``ckpt/1`` checkpoint, ready to restore, fork or save."""

    meta: SnapshotMeta
    config: Any  # ScenarioConfig (typed loosely to avoid an import cycle)
    payload: bytes = field(repr=False)


@dataclass
class Restored:
    """A restored continuation: the scenario plus its snapshot extras."""

    scenario: Scenario
    extras: Dict[str, Any] = field(default_factory=dict)


def _payload_fingerprint(payload: bytes) -> str:
    return "sha256:" + hashlib.sha256(payload).hexdigest()


def _python_tag() -> str:
    return f"{sys.version_info.major}.{sys.version_info.minor}"


def snapshot_scenario(
    scenario: Scenario,
    extras: Optional[Dict[str, Any]] = None,
    note: str = "",
) -> Snapshot:
    """Capture ``scenario`` (and optional extra handles) as a snapshot.

    ``extras`` is a dict of additional picklable objects to carry along
    — typically evader handles or workload RNGs that are not reachable
    from the scenario itself.  Objects shared between the scenario and
    the extras stay shared in the restored graph (one pickle memo).

    Raises:
        SimulationError: when the simulator loop is mid-event — a
            snapshot is only well-defined on the inter-event boundary.
    """
    sim = scenario.sim
    if sim is not None and sim._running:
        from ..sim.engine import SimulationError

        raise SimulationError("cannot snapshot while the simulator loop is running")
    payload, topo_keys = dumps_graph((scenario, dict(extras or {})))
    meta = SnapshotMeta(
        schema=CKPT_SCHEMA,
        sim_time=0.0 if sim is None else sim.now,
        events_fired=0 if sim is None else sim.events_fired,
        topo_keys=topo_keys,
        fingerprint=_payload_fingerprint(payload),
        python=_python_tag(),
        note=note,
    )
    return Snapshot(meta=meta, config=scenario.config, payload=payload)


def restore_scenario(snapshot: Snapshot) -> Restored:
    """Restore a snapshot into a fresh, independent continuation.

    Every restore unpickles the payload anew, so N restores give N
    disjoint object graphs (fork-ready); topology references resolve
    through this process's content-addressed cache, rebuilding on a
    cold cache.
    """
    if snapshot.meta.schema != CKPT_SCHEMA:
        raise CkptFormatError(
            f"snapshot schema {snapshot.meta.schema!r} != {CKPT_SCHEMA!r}"
        )
    scenario, extras = loads_graph(snapshot.payload)
    return Restored(scenario=scenario, extras=extras)


# ----------------------------------------------------------------------
# On-disk envelope
# ----------------------------------------------------------------------
def save(snapshot: Snapshot, path: Union[str, Path]) -> None:
    """Write the snapshot to ``path`` in the ``ckpt/1`` envelope."""
    config_blob, _ = dumps_graph(snapshot.config)
    header = json.dumps(
        {**snapshot.meta.as_json_dict(),
         "config_bytes": len(config_blob),
         "payload_bytes": len(snapshot.payload)},
        sort_keys=True,
    ).encode("utf-8")
    with open(path, "wb") as handle:
        handle.write(CKPT_MAGIC)
        handle.write(struct.pack(">I", len(header)))
        handle.write(header)
        handle.write(config_blob)
        handle.write(snapshot.payload)


def load(path: Union[str, Path], allow_python_mismatch: bool = False) -> Snapshot:
    """Read a ``ckpt/1`` file with strict format and compat checks.

    Raises:
        CkptFormatError: bad magic, wrong schema, truncated sections or
            a payload that fails its fingerprint.
        CkptCompatError: the payload was written by a different Python
            minor version (its by-value code objects may not load) —
            pass ``allow_python_mismatch=True`` to try anyway.
    """
    data = Path(path).read_bytes()
    if not data.startswith(CKPT_MAGIC):
        raise CkptFormatError(f"{path}: not a repro checkpoint (bad magic)")
    offset = len(CKPT_MAGIC)
    if len(data) < offset + 4:
        raise CkptFormatError(f"{path}: truncated header length")
    (header_len,) = struct.unpack(">I", data[offset:offset + 4])
    offset += 4
    try:
        header = json.loads(data[offset:offset + header_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CkptFormatError(f"{path}: unreadable header: {exc}") from exc
    offset += header_len
    if header.get("schema") != CKPT_SCHEMA:
        raise CkptFormatError(
            f"{path}: schema {header.get('schema')!r} != {CKPT_SCHEMA!r} "
            "(no cross-version compatibility is promised)"
        )
    meta = SnapshotMeta.from_json_dict(header)
    config_bytes = header["config_bytes"]
    payload_bytes = header["payload_bytes"]
    if len(data) != offset + config_bytes + payload_bytes:
        raise CkptFormatError(
            f"{path}: expected {offset + config_bytes + payload_bytes} bytes, "
            f"file has {len(data)}"
        )
    config_blob = data[offset:offset + config_bytes]
    payload = data[offset + config_bytes:]
    if _payload_fingerprint(payload) != meta.fingerprint:
        raise CkptFormatError(f"{path}: payload fails its fingerprint check")
    if meta.python != _python_tag() and not allow_python_mismatch:
        raise CkptCompatError(
            f"{path}: written under Python {meta.python}, this is "
            f"{_python_tag()} — by-value code objects may not load "
            "(pass allow_python_mismatch=True to try)"
        )
    return Snapshot(meta=meta, config=loads_graph(config_blob), payload=payload)


# ----------------------------------------------------------------------
# The canonical run fingerprint (the golden-guarantee comparator)
# ----------------------------------------------------------------------
def trace_fingerprint(scenario: Scenario) -> tuple:
    """Deterministic fingerprint of everything a run observably did.

    Folds the full trace (every record, order-sensitive) into a CRC and
    combines it with the clock, the events-fired count, the evader
    position, the accountant totals and every find record.  Two runs
    with equal fingerprints executed the same events with the same
    outcomes; *snapshot then resume* must match the uninterrupted run's
    fingerprint exactly.
    """
    system = scenario.system
    sim = system.sim
    crc = 0
    for rec in sim.trace:
        crc = zlib.crc32(
            repr((rec.time, rec.source, rec.kind, rec.detail)).encode("utf-8"),
            crc,
        )
    finds = tuple(
        (find_id, record.completed, record.latency, record.work, record.retries)
        for find_id, record in system.finds.records.items()
    )
    accountant = scenario.accountant
    evader = getattr(system, "evader", None)
    return (
        sim.now,
        sim.events_fired,
        len(sim.trace),
        crc,
        None if evader is None else evader.region,
        None
        if accountant is None
        else (
            accountant.move_work,
            accountant.find_work,
            accountant.other_work,
            accountant.messages,
        ),
        finds,
    )
