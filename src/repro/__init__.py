"""VINESTALK reproduction: virtual-node-based tracking for mobile networks.

Reproduces Nolte & Lynch, *A Virtual Node-Based Tracking Algorithm for
Mobile Networks* (ICDCS 2007): the Virtual Stationary Automata layer,
the C-gcast service, the VINESTALK Tracker with lateral links and
secondary pointers, the §IV-C verification machinery (lookAhead /
atomicMoveSeq / consistency), find operations, baselines, and an
empirical evaluation harness for every theorem the paper proves.

Quick start::

    from repro import VineStalk, grid_hierarchy
    from repro.mobility import RandomNeighborWalk

    system = VineStalk(grid_hierarchy(r=3, max_level=2))
    evader = system.make_evader(RandomNeighborWalk(), dwell=100.0)
    system.run_to_quiescence()
    find_id = system.issue_find(origin=(0, 0))
    system.run_to_quiescence()
    print(system.finds.records[find_id].found_region)
"""

from .core.emulated import EmulatedVineStalk
from .core.vinestalk import VineStalk
from .faults import FaultPlan, default_plan
from .hierarchy.grid import GridHierarchy, grid_hierarchy
from .scenario import Scenario, ScenarioConfig, build
from .sim.engine import Simulator

__version__ = "1.0.0"

__all__ = [
    "EmulatedVineStalk",
    "FaultPlan",
    "GridHierarchy",
    "Scenario",
    "ScenarioConfig",
    "Simulator",
    "VineStalk",
    "__version__",
    "build",
    "default_plan",
    "grid_hierarchy",
]
