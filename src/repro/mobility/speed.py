"""Evader speed restrictions (§VI).

The concurrent analysis of §VI requires the mobile object to be slow
enough that each move's grows and shrinks behave as in the atomic case.
This module derives safe dwell times from the timer schedule and the
hierarchy geometry.

*Atomic dwell* — long enough for a move's full update (grow to MAX plus
the trailing shrink) to complete before the next move: a worst-case grow
climbs every level paying ``g(l)`` plus the parent-hop delay, and the
shrink trails it by the slower ``s(l)`` schedule; we sum both and the
neighbor-update broadcasts.

*Concurrent dwell* — the §VI regime: the object may move again once the
lowest levels have settled; higher-level deadwood is still shrinking.
We use the level-1 settling time, which keeps per-move triggered work
identical to the atomic case in our executions (benchmark E6 verifies).
"""

from __future__ import annotations

from ..hierarchy.params import GeometryParams


def level_update_time(
    schedule, params: GeometryParams, delta: float, e: float, level: int
) -> float:
    """Worst-case time for a move's updates to settle through ``level``.

    Counts, per level ``j`` below ``level``: up to *two* shrink dwells
    ``s(j)`` plus a lateral hop ``(δ+e)·n(j)`` (a shrink traverses two
    same-level processes when the path has a lateral link there — the
    ``2s(l) + (δ+e)n(l)`` term in the Theorem 4.9 proof), the parent-hop
    propagation delay ``(δ+e)·p(j)``, and the trailing shrinkUpd /
    growNbr neighbor broadcast ``(δ+e)·n(j)``.
    """
    if level < 0 or level > params.max_level:
        raise ValueError(f"level {level} outside 0..{params.max_level}")
    total = delta  # client -> level-0 VSA broadcast
    for j in range(min(level + 1, params.max_level)):
        total += 2 * schedule.s(j)
        total += (delta + e) * params.p(j)
        total += 2 * (delta + e) * params.n(j)
    return total


def atomic_dwell(schedule, params: GeometryParams, delta: float, e: float) -> float:
    """A dwell time guaranteeing updates complete before the next move."""
    return level_update_time(schedule, params, delta, e, params.max_level)


def concurrent_dwell(
    schedule, params: GeometryParams, delta: float, e: float, settle_level: int = 1
) -> float:
    """A §VI-style dwell: low levels settle, higher levels update in flight."""
    return level_update_time(schedule, params, delta, e, settle_level)
