"""Generator workloads, the regime runner and the sweep job set.

:class:`GeneratedWalk` adapts a generator spec (or preset name) to the
unified workload protocol (DESIGN.md §9): ``events(seed)`` generates
§VI-legal traces and exports them as the frozen action script both
engines consume, so any mobility regime runs bit-identically on the
plain reference engine and the K-sharded PDES engine.

:func:`run_mobility_regime` is the one-call E-series entry point behind
the ``repro mobility`` CLI subcommand and the ``"mobility_regime"``
sweep runner: reference-run one regime, cross-check the sharded engine
when asked, and report trace statistics alongside the §VI verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Tuple, Union

from .limits import SpeedLimits, check_trace, touched_level
from .presets import preset, preset_names
from .spec import GeneratorSpec
from .trace import generate, trace_workload


def resolve_spec(mobility: Union[str, GeneratorSpec]) -> GeneratorSpec:
    """Accept a preset name or an explicit spec tree."""
    if isinstance(mobility, str):
        return preset(mobility)
    if isinstance(mobility, GeneratorSpec):
        return mobility
    raise TypeError(
        f"mobility must be a preset name or GeneratorSpec, got {type(mobility).__name__}"
    )


@dataclass(frozen=True)
class GeneratedWalk:
    """A generator regime as a protocol workload (pure function of seed)."""

    r: int = 2
    max_level: int = 2
    mobility: Union[str, GeneratorSpec] = "uniform-walk"
    n_moves: int = 8
    n_finds: int = 4
    n_objects: int = 1
    find_clients: int = 4
    delta: float = 1.0
    e: float = 0.5
    mode: str = "concurrent"
    base_dwell: Optional[float] = None
    deadline: Optional[float] = None

    def traces(self, seed: int = 0):
        from ...topo.cache import shared_grid_hierarchy

        hierarchy = shared_grid_hierarchy(self.r, self.max_level)
        spec = resolve_spec(self.mobility)
        return generate(
            spec,
            hierarchy,
            self.n_moves,
            seed=seed,
            n_objects=self.n_objects,
            base_dwell=self.base_dwell,
            delta=self.delta,
            e=self.e,
            mode=self.mode,
        )

    def events(self, seed: int = 0):
        from ...topo.cache import shared_grid_hierarchy

        hierarchy = shared_grid_hierarchy(self.r, self.max_level)
        traces = self.traces(seed)
        # Leave one worst-case settle window after the last move so
        # trailing finds complete before the horizon.
        limits = SpeedLimits.for_hierarchy(
            hierarchy, delta=self.delta, e=self.e, mode=self.mode
        )
        script = trace_workload(
            traces,
            n_finds=self.n_finds,
            find_clients=self.find_clients,
            hierarchy=hierarchy,
            seed=seed,
            deadline=self.deadline,
            settle=2.0 * limits.enter_floor,
        )
        return script.actions


@dataclass(frozen=True)
class MobilityRegimeResult:
    """Picklable result of one regime run (E-series row)."""

    regime: str
    r: int
    max_level: int
    seed: int
    n_objects: int
    n_moves: int
    steps_scripted: int
    finds_issued: int
    finds_completed: int
    events: int
    messages_sent: int
    moves_observed: int
    move_work: float
    find_work: float
    now: float
    wall_s: float
    canonical_fingerprint: str
    exact_fingerprint: str
    min_dwell: float
    mean_dwell: float
    speed_ok: bool
    speed_violation: Optional[str]
    touched_levels: Dict[int, int]
    shards: int = 1
    sharded_fingerprint: Optional[str] = None
    fingerprint_match: Optional[bool] = None


def run_mobility_regime(
    regime: Union[str, GeneratorSpec] = "uniform-walk",
    r: int = 2,
    max_level: int = 2,
    seed: int = 11,
    n_moves: int = 8,
    n_finds: int = 4,
    n_objects: int = 1,
    shards: int = 0,
    delta: float = 1.0,
    e: float = 0.5,
    mode: str = "concurrent",
    base_dwell: Optional[float] = None,
) -> MobilityRegimeResult:
    """Run one mobility regime end to end on the reference engine.

    ``shards >= 1`` additionally runs the same frozen script on the
    K-sharded engine and records the cross-engine fingerprint verdict.
    """
    from ...sim.sharded.context import ShardContext
    from ...sim.sharded.core import ShardedSimulator, _tiling_for, canonical_fingerprint
    from ...sim.sharded.plan import strip_plan
    from ...scenario import ScenarioConfig
    from ...topo.cache import shared_grid_hierarchy
    from ...workload import materialize

    spec = resolve_spec(regime)
    name = regime if isinstance(regime, str) else type(regime).__name__
    walk = GeneratedWalk(
        r=r,
        max_level=max_level,
        mobility=spec,
        n_moves=n_moves,
        n_finds=n_finds,
        n_objects=n_objects,
        delta=delta,
        e=e,
        mode=mode,
        base_dwell=base_dwell,
    )
    workload = materialize(walk, seed)
    config = ScenarioConfig(
        r=r, max_level=max_level, delta=delta, e=e, seed=seed, shards=1
    )

    wall0 = perf_counter()
    context = ShardContext(config, strip_plan(_tiling_for(config), 1), 0, workload)
    context.sim.run()
    wall = perf_counter() - wall0
    report = context.report()

    hierarchy = shared_grid_hierarchy(r, max_level)
    limits = SpeedLimits.for_hierarchy(hierarchy, delta=delta, e=e, mode=mode)
    traces = walk.traces(seed)
    dwells = [d for tr in traces for d in tr.dwells()]
    violation = None
    for tr in traces:
        violation = check_trace(tr, hierarchy, limits)
        if violation is not None:
            break
    levels: Dict[int, int] = {}
    for tr in traces:
        path = tr.regions
        for u, v in zip(path, path[1:]):
            level = touched_level(hierarchy, u, v)
            levels[level] = levels.get(level, 0) + 1

    sharded_fp = None
    match = None
    if shards >= 1:
        sharded = ShardedSimulator(
            config.with_(shards=shards), workload, backend="serial"
        ).run()
        sharded_fp = sharded.canonical_fingerprint
        match = sharded_fp == canonical_fingerprint(report["send_lines"])

    return MobilityRegimeResult(
        regime=name,
        r=r,
        max_level=max_level,
        seed=seed,
        n_objects=len(traces),
        n_moves=n_moves,
        steps_scripted=sum(len(tr.steps) for tr in traces),
        finds_issued=len(report["finds"]),
        finds_completed=sum(1 for f in report["finds"].values() if f["completed"]),
        events=report["events"],
        messages_sent=report["messages_sent"],
        moves_observed=report["moves_observed"],
        move_work=report["move_work"],
        find_work=report["find_work"],
        now=report["now"],
        wall_s=wall,
        canonical_fingerprint=canonical_fingerprint(report["send_lines"]),
        exact_fingerprint=f"{report['exact_crc']:08x}",
        min_dwell=min(dwells) if dwells else 0.0,
        mean_dwell=sum(dwells) / len(dwells) if dwells else 0.0,
        speed_ok=violation is None,
        speed_violation=violation,
        touched_levels=levels,
        shards=max(shards, 1) if shards >= 1 else 1,
        sharded_fingerprint=sharded_fp,
        fingerprint_match=match,
    )


def mobility_jobs(
    regimes: Optional[Iterable[str]] = None,
    r: int = 2,
    max_level: int = 2,
    seed: int = 11,
    n_moves: int = 8,
    n_finds: int = 4,
    shards: int = 0,
):
    """The canonical regime sweep: one job per registered preset."""
    from ...analysis.parallel import job

    names = tuple(regimes) if regimes is not None else preset_names()
    return [
        job(
            "mobility_regime",
            regime=name,
            r=r,
            max_level=max_level,
            seed=seed,
            n_moves=n_moves,
            n_finds=n_finds,
            shards=shards,
        )
        for name in names
    ]
