"""Frozen generator combinators — the declarative mobility DSL.

A :class:`GeneratorSpec` tree is a small, picklable description of a
mobility regime.  Specs carry **no runtime state**: ``resolve()`` turns
a spec into a fresh :class:`~repro.mobility.models.MobilityModel` for
one evader, drawing every placement decision (waypoint sampling,
obstacle selection) from the rng stream the caller passes — so the same
``(spec, seed)`` pair always yields the same model, and a forked
registry yields a divergent one.

Grammar (each node is a frozen dataclass; children nest freely)::

    spec := Walk()
          | WaypointGraph(nodes, k, edges, speeds)
          | Obstacles(inner, regions, density)
          | Convoy(leader, followers, offset)
          | Hotspots(k, period)
          | Dither()
          | Replay(steps)
          | Compose(parts, weights)
          | Switch(parts, every)
          | TimeSlice(parts, boundaries)

``ScenarioConfig(mobility=...)`` accepts a spec or a registry preset
name (:mod:`repro.mobility.gen.presets`) and resolves it in ``build()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ...geometry.regions import RegionId
from .models import (
    ComposeModel,
    DitherModel,
    HotspotModel,
    MaskedModel,
    ReplayModel,
    SwitchModel,
    TimeSliceModel,
    UniformWalkModel,
    WaypointGraphModel,
    masked_tiling,
)


@dataclass(frozen=True)
class GeneratorSpec:
    """Base class for mobility-generator combinators."""

    def resolve(self, hierarchy, rng, tiling=None):
        """Build a fresh mobility model for one evader.

        ``tiling`` overrides ``hierarchy.tiling`` when an enclosing
        :class:`Obstacles` node has already masked the space.
        """
        raise NotImplementedError

    def _space(self, hierarchy, tiling):
        return hierarchy.tiling if tiling is None else tiling


@dataclass(frozen=True)
class Walk(GeneratorSpec):
    """Uniform random neighbor walk."""

    def resolve(self, hierarchy, rng, tiling=None):
        return UniformWalkModel()


@dataclass(frozen=True)
class WaypointGraph(GeneratorSpec):
    """Patrol a waypoint graph with per-edge speed profiles.

    Attributes:
        nodes: explicit waypoint regions; empty means "sample ``k``
            distinct regions from the (masked) tiling at resolve time".
        k: number of waypoints to sample when ``nodes`` is empty.
        edges: directed waypoint-index pairs; empty means a ring
            ``0 → 1 → … → k-1 → 0``.
        speeds: per-edge dwell multipliers aligned with ``edges``
            (``2.0`` = a slow leg, dwells twice the base; the §VI floor
            still clamps from below).  Empty means all ``1.0``.
    """

    nodes: Tuple[RegionId, ...] = ()
    k: int = 4
    edges: Tuple[Tuple[int, int], ...] = ()
    speeds: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if not self.nodes and self.k < 2:
            raise ValueError("need at least two waypoints")
        if self.speeds and len(self.speeds) != len(self.edges):
            raise ValueError("speeds must align with edges")
        if any(s <= 0 for s in self.speeds):
            raise ValueError("edge speeds must be positive")

    def resolve(self, hierarchy, rng, tiling=None):
        space = self._space(hierarchy, tiling)
        if self.nodes:
            nodes = self.nodes
            missing = set(nodes) - set(space.regions())
            if missing:
                raise ValueError(f"waypoints not in the tiling: {sorted(missing)}")
        else:
            regions = list(space.regions())
            if len(regions) < self.k:
                raise ValueError(
                    f"tiling has {len(regions)} regions, cannot sample {self.k} waypoints"
                )
            nodes = tuple(rng.sample(regions, self.k))
        n = len(nodes)
        edges = self.edges or tuple((i, (i + 1) % n) for i in range(n))
        for i, j in edges:
            if not (0 <= i < n and 0 <= j < n) or i == j:
                raise ValueError(f"bad waypoint edge ({i}, {j}) for {n} nodes")
        out: Dict[int, Tuple[int, ...]] = {}
        for i, j in edges:
            out[i] = out.get(i, ()) + (j,)
        for i in range(n):
            # Dead-end waypoints bounce back along reverse edges.
            if i not in out:
                back = tuple(a for a, b in edges if b == i)
                if not back:
                    raise ValueError(f"waypoint {i} is unreachable and has no edges")
                out[i] = back
        speeds = {
            edge: (self.speeds[idx] if self.speeds else 1.0)
            for idx, edge in enumerate(edges)
        }
        return WaypointGraphModel(nodes=nodes, edges=out, speeds=speeds)


@dataclass(frozen=True)
class Obstacles(GeneratorSpec):
    """Mask regions out of the tiling the inner generator walks.

    Attributes:
        inner: generator confined to the masked space.
        regions: explicit obstacle regions.
        density: additionally block this fraction of the remaining
            regions, sampled at resolve time; candidates that would
            disconnect the walkable space are skipped (greedy
            connectivity-preserving selection).
    """

    inner: GeneratorSpec = field(default_factory=Walk)
    regions: Tuple[RegionId, ...] = ()
    density: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.density < 1.0:
            raise ValueError("density must be in [0, 1)")
        if not self.regions and self.density == 0.0:
            raise ValueError("obstacle field needs regions and/or density > 0")

    def resolve(self, hierarchy, rng, tiling=None):
        space = self._space(hierarchy, tiling)
        blocked = list(self.regions)
        if self.density:
            total = len(list(space.regions()))
            budget = int(self.density * total)
            candidates = [r for r in space.regions() if r not in set(blocked)]
            order = rng.sample(candidates, len(candidates))
            for region in order:
                if len(blocked) >= budget + len(self.regions):
                    break
                try:
                    masked_tiling(space, blocked + [region])
                except ValueError:
                    continue
                blocked.append(region)
        masked = masked_tiling(space, blocked)
        inner = self.inner.resolve(hierarchy, rng, tiling=masked)
        return MaskedModel(inner, masked, tuple(blocked))


@dataclass(frozen=True)
class Convoy(GeneratorSpec):
    """Group mobility: a leader plus bounded-offset followers.

    Resolving yields the **leader's** model (a single evader is just the
    leader).  :func:`repro.mobility.gen.trace.generate` expands the
    followers: follower ``k`` repeats the leader's path lagged by
    ``k * offset`` steps, so the group stays within a bounded trail of
    the leader for the whole trace.
    """

    leader: GeneratorSpec = field(default_factory=Walk)
    followers: int = 2
    offset: int = 1

    def __post_init__(self) -> None:
        if self.followers < 1:
            raise ValueError("a convoy needs at least one follower")
        if self.offset < 1:
            raise ValueError("follower offset must be >= 1 step")

    def resolve(self, hierarchy, rng, tiling=None):
        return self.leader.resolve(hierarchy, rng, tiling=tiling)


@dataclass(frozen=True)
class Hotspots(GeneratorSpec):
    """Hotspot churn: walk toward time-varying attraction points.

    ``k`` candidate hotspots are sampled at resolve time; every
    ``period`` steps the active hotspot is redrawn from the pool.
    """

    k: int = 3
    period: int = 6

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("need at least one hotspot")
        if self.period < 1:
            raise ValueError("churn period must be >= 1 step")

    def resolve(self, hierarchy, rng, tiling=None):
        space = self._space(hierarchy, tiling)
        regions = list(space.regions())
        pool = tuple(rng.sample(regions, min(self.k, len(regions))))
        return HotspotModel(pool=pool, period=self.period)


@dataclass(frozen=True)
class Dither(GeneratorSpec):
    """Adversarial handover-maximizing path hugging the deepest cluster
    boundaries (Eppstein–Goodrich–Löffler-style dither)."""

    def resolve(self, hierarchy, rng, tiling=None):
        return DitherModel(hierarchy)


@dataclass(frozen=True)
class Replay(GeneratorSpec):
    """Replay a recorded trace's region path as a mobility model.

    ``steps`` is the ``MobilityTrace.steps`` tuple of ``(time, region)``
    pairs (times are kept for provenance; the evader's own dwell clock —
    or the trace generator's §VI re-timing — drives the replayed run).
    """

    steps: Tuple[Tuple[float, RegionId], ...] = ()

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("replay needs a non-empty recorded trace")

    @property
    def path(self) -> Tuple[RegionId, ...]:
        return tuple(region for _, region in self.steps)

    def resolve(self, hierarchy, rng, tiling=None):
        return ReplayModel(self.path)


@dataclass(frozen=True)
class Compose(GeneratorSpec):
    """Weighted per-step mixture of child generators."""

    parts: Tuple[GeneratorSpec, ...] = ()
    weights: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ValueError("Compose needs at least two parts")
        if self.weights and len(self.weights) != len(self.parts):
            raise ValueError("weights must align with parts")
        if any(w <= 0 for w in self.weights):
            raise ValueError("weights must be positive")

    def resolve(self, hierarchy, rng, tiling=None):
        models = tuple(p.resolve(hierarchy, rng, tiling=tiling) for p in self.parts)
        weights = self.weights or tuple(1.0 for _ in self.parts)
        return ComposeModel(models, weights)


@dataclass(frozen=True)
class Switch(GeneratorSpec):
    """Round-robin between child generators every ``every`` steps."""

    parts: Tuple[GeneratorSpec, ...] = ()
    every: int = 4

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ValueError("Switch needs at least two parts")
        if self.every < 1:
            raise ValueError("switch period must be >= 1 step")

    def resolve(self, hierarchy, rng, tiling=None):
        models = tuple(p.resolve(hierarchy, rng, tiling=tiling) for p in self.parts)
        return SwitchModel(models, self.every)


@dataclass(frozen=True)
class TimeSlice(GeneratorSpec):
    """Piecewise schedule: part ``i`` drives steps below
    ``boundaries[i]``; the final part drives the remainder."""

    parts: Tuple[GeneratorSpec, ...] = ()
    boundaries: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ValueError("TimeSlice needs at least two parts")
        if len(self.boundaries) != len(self.parts) - 1:
            raise ValueError("need exactly one boundary between consecutive parts")
        if any(b <= 0 for b in self.boundaries) or list(self.boundaries) != sorted(
            set(self.boundaries)
        ):
            raise ValueError("boundaries must be positive and strictly increasing")

    def resolve(self, hierarchy, rng, tiling=None):
        models = tuple(p.resolve(hierarchy, rng, tiling=tiling) for p in self.parts)
        return TimeSliceModel(models, self.boundaries)


#: The primitive generators (6) and combinators (3) the framework ships.
PRIMITIVES = (Walk, WaypointGraph, Obstacles, Convoy, Hotspots, Dither, Replay)
COMBINATORS = (Compose, Switch, TimeSlice)
