"""``repro.mobility.gen`` — composable trajectory & deployment generation.

The generator framework (DESIGN.md §10) describes mobility regimes as
small frozen combinator trees (:mod:`~repro.mobility.gen.spec`),
resolves them into :class:`~repro.mobility.models.MobilityModel`
instances the existing :class:`~repro.mobility.evader.Evader` consumes
unchanged, and emits seeded-deterministic, §VI-speed-legal traces
(:mod:`~repro.mobility.gen.trace`) that export to the unified workload
protocol — so every regime runs bit-identically on the plain and
sharded engines.  Named regimes live in
:mod:`~repro.mobility.gen.presets`; non-uniform node placement in
:mod:`~repro.mobility.gen.deploy`.
"""

from .deploy import (
    DeploymentSpec,
    HotspotNodes,
    MaskedNodes,
    ScatterNodes,
    UniformNodes,
    place,
)
from .limits import MODES, SpeedLimits, check_trace, touched_level
from .models import GeneratedModel, MobilityContractError, masked_tiling
from .presets import preset, preset_names, register_preset
from .spec import (
    COMBINATORS,
    PRIMITIVES,
    Compose,
    Convoy,
    Dither,
    GeneratorSpec,
    Hotspots,
    Obstacles,
    Replay,
    Switch,
    TimeSlice,
    Walk,
    WaypointGraph,
)
from .trace import (
    MobilityTrace,
    TraceRecorder,
    generate,
    generate_trace,
    trace_from_obs,
    trace_workload,
)
from .workload import (
    GeneratedWalk,
    MobilityRegimeResult,
    mobility_jobs,
    resolve_spec,
    run_mobility_regime,
)

__all__ = [
    # spec / DSL
    "GeneratorSpec",
    "Walk",
    "WaypointGraph",
    "Obstacles",
    "Convoy",
    "Hotspots",
    "Dither",
    "Replay",
    "Compose",
    "Switch",
    "TimeSlice",
    "PRIMITIVES",
    "COMBINATORS",
    # presets
    "preset",
    "preset_names",
    "register_preset",
    # §VI limits
    "MODES",
    "SpeedLimits",
    "check_trace",
    "touched_level",
    # traces
    "MobilityTrace",
    "TraceRecorder",
    "generate",
    "generate_trace",
    "trace_from_obs",
    "trace_workload",
    # models
    "GeneratedModel",
    "MobilityContractError",
    "masked_tiling",
    # deployments
    "DeploymentSpec",
    "UniformNodes",
    "ScatterNodes",
    "HotspotNodes",
    "MaskedNodes",
    "place",
    # workloads / runner
    "GeneratedWalk",
    "MobilityRegimeResult",
    "resolve_spec",
    "run_mobility_regime",
    "mobility_jobs",
]
