"""Seeded trace generation, recording, and workload export.

``generate()`` walks a resolved generator over the hierarchy's tiling
and emits §VI-legal :class:`MobilityTrace` objects: each dwell is the
base dwell scaled by the model's per-step ``dwell_factor`` and clamped
from below by the :class:`~repro.mobility.gen.limits.SpeedLimits` floor
for the move that *arrived* at the current region (the enter pays the
worst-case floor, like the paper's join).

Determinism contract: all step randomness is drawn from
``RngRegistry(seed)`` stream ``"mobility.gen:<object_id>"`` (find
placement from ``"mobility.gen:finds"``), so the same ``(spec, seed)``
pair is byte-identical, and ``fork`` re-derives every stream for
divergent replicas — the property suite pins both directions.

Recording closes the loop: :class:`TraceRecorder` taps a live evader's
observer hook (or :func:`trace_from_obs` reads ``EvaderMoved`` obs
events back out of a collector), and the resulting trace replays
through :class:`~repro.mobility.gen.spec.Replay` /
:func:`trace_workload` with a bit-identical dispatch fingerprint.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from ...geometry.regions import RegionId
from ...sim.rng import RngRegistry
from ...sim.sharded.workload import (
    EvaderEnter,
    EvaderStep,
    IssueFind,
    ScriptedWorkload,
)
from .limits import SpeedLimits
from .models import MobilityContractError
from .spec import Convoy, GeneratorSpec

#: Per-object (and per-find) time stagger, mirroring the service
#: load generator: keeps causally-independent same-instant events
#: impossible while staying far below any §VI dwell floor.
STAGGER = 1.0 / 1024.0


@dataclass(frozen=True)
class MobilityTrace:
    """One evader's timed region path: ``steps[0]`` is the enter."""

    steps: Tuple[Tuple[float, RegionId], ...]
    object_id: int = 0

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a trace needs at least the enter step")
        times = [t for t, _ in self.steps]
        if times != sorted(times) or len(set(times)) != len(times):
            raise ValueError("trace times must be strictly increasing")

    @property
    def regions(self) -> Tuple[RegionId, ...]:
        return tuple(region for _, region in self.steps)

    @property
    def times(self) -> Tuple[float, ...]:
        return tuple(t for t, _ in self.steps)

    def dwells(self) -> Tuple[float, ...]:
        times = self.times
        return tuple(b - a for a, b in zip(times, times[1:]))

    def crc(self) -> int:
        """A stable content fingerprint (used by the golden tests)."""
        payload = repr((self.object_id, self.steps)).encode()
        return zlib.crc32(payload) & 0xFFFFFFFF


def generate(
    spec: GeneratorSpec,
    hierarchy,
    n_moves: int,
    seed: int = 0,
    fork: Optional[int] = None,
    n_objects: int = 1,
    limits: Optional[SpeedLimits] = None,
    base_dwell: Optional[float] = None,
    delta: float = 1.0,
    e: float = 0.5,
    mode: str = "concurrent",
    start_time: float = 0.0,
) -> Tuple[MobilityTrace, ...]:
    """Generate §VI-legal traces for ``n_objects`` evaders.

    ``base_dwell`` is the pre-clamp dwell target (``None`` means "the
    floor itself", i.e. move as fast as §VI allows); the model's
    ``dwell_factor`` scales it per step, and the §VI floor clamps from
    below either way.  A :class:`~repro.mobility.gen.spec.Convoy` spec
    expands its followers here (lagged copies of the leader's path), so
    ``n_objects`` grows to ``1 + followers`` automatically.
    """
    if n_moves < 1:
        raise ValueError("need at least one move")
    registry = RngRegistry(seed)
    if fork is not None:
        registry = registry.fork(fork)
    if limits is None:
        limits = SpeedLimits.for_hierarchy(hierarchy, delta=delta, e=e, mode=mode)
    if isinstance(spec, Convoy):
        leader = _generate_one(
            spec, hierarchy, n_moves, registry, 0, limits, base_dwell, start_time
        )
        traces = [leader]
        for k in range(1, max(n_objects, 1 + spec.followers)):
            traces.append(_lagged_follower(leader, k, spec.offset))
        return tuple(traces)
    return tuple(
        _generate_one(
            spec, hierarchy, n_moves, registry, k, limits, base_dwell, start_time
        )
        for k in range(n_objects)
    )


def generate_trace(spec, hierarchy, n_moves, **kwargs) -> MobilityTrace:
    """Single-object convenience wrapper around :func:`generate`."""
    return generate(spec, hierarchy, n_moves, n_objects=1, **kwargs)[0]


def _generate_one(
    spec: GeneratorSpec,
    hierarchy,
    n_moves: int,
    registry: RngRegistry,
    object_id: int,
    limits: SpeedLimits,
    base_dwell: Optional[float],
    start_time: float,
) -> MobilityTrace:
    rng = registry.stream(f"mobility.gen:{object_id}")
    model = spec.resolve(hierarchy, rng)
    start = model.start_region(hierarchy.tiling, rng)
    t = start_time + object_id * STAGGER
    steps: List[Tuple[float, RegionId]] = [(t, start)]
    current = start
    for i in range(n_moves):
        target = model.next_region(current, hierarchy.tiling, rng)
        if target == current:
            if getattr(model, "allows_stay", True):
                break  # finite replay exhausted; the trace simply ends
            raise MobilityContractError(
                f"{type(model).__name__} returned the current region {current!r}"
            )
        if i == 0:
            floor = limits.enter_floor
        else:
            floor = limits.required(hierarchy, steps[-2][1], current)
        factor = getattr(model, "dwell_factor", lambda c, n: 1.0)(current, target)
        dwell = max(floor, (base_dwell if base_dwell is not None else floor) * factor)
        t += dwell
        steps.append((t, target))
        current = target
    return MobilityTrace(steps=tuple(steps), object_id=object_id)


def _lagged_follower(leader: MobilityTrace, k: int, offset: int) -> MobilityTrace:
    """Follower ``k`` repeats the leader's path lagged ``k*offset`` steps.

    Each follower move mirrors a leader move between the *same* region
    pair at the leader's own (later) step times, so the §VI floors the
    leader satisfied carry over move-for-move; the ``k * STAGGER`` shift
    keeps all group events causally ordered.
    """
    lag = k * offset
    shift = k * STAGGER
    path = leader.regions
    times = leader.times
    steps: List[Tuple[float, RegionId]] = [(times[0] + shift, path[0])]
    for i in range(lag + 1, len(path)):
        steps.append((times[i] + shift, path[i - lag]))
    return MobilityTrace(steps=tuple(steps), object_id=k)


def trace_workload(
    traces: Sequence[MobilityTrace],
    n_finds: int = 0,
    find_clients: int = 4,
    hierarchy=None,
    seed: int = 0,
    deadline: Optional[float] = None,
    settle: float = 0.0,
) -> ScriptedWorkload:
    """Export generated traces as a canonical engine script.

    Finds are drawn from the registry's ``"mobility.gen:finds"`` stream:
    origins rotate over ``find_clients`` seeded client regions, targets
    over the traced objects, and issue times are spread across the
    movement window with the usual ``j/1024`` stagger plus a uniqueness
    nudge (no two script actions may share an instant).  ``settle``
    extends the horizon past the last move so trailing finds complete.
    """
    if not traces:
        raise ValueError("need at least one trace")
    actions: List[object] = []
    used = set()

    def unique(t: float) -> float:
        while t in used:
            t += STAGGER / 4.0
        used.add(t)
        return t

    for trace in traces:
        t0, start = trace.steps[0]
        actions.append(
            EvaderEnter(time=unique(t0), region=start, object_id=trace.object_id)
        )
        for t, region in trace.steps[1:]:
            actions.append(
                EvaderStep(time=unique(t), target=region, object_id=trace.object_id)
            )
    horizon = max(tr.steps[-1][0] for tr in traces)
    if n_finds:
        rng = RngRegistry(seed).stream("mobility.gen:finds")
        if hierarchy is not None:
            regions = list(hierarchy.tiling.regions())
        else:
            regions = sorted({r for tr in traces for r in tr.regions})
        clients = [
            regions[rng.randrange(len(regions))]
            for _ in range(min(find_clients, len(regions)))
        ]
        first = min(tr.steps[0][0] for tr in traces)
        span = max(horizon - first, 1.0)
        for j in range(n_finds):
            frac = (j + 1) / (n_finds + 1)
            t = unique(first + frac * span + j * STAGGER)
            actions.append(
                IssueFind(
                    time=t,
                    origin=clients[j % len(clients)],
                    find_id=j + 1,
                    object_id=traces[j % len(traces)].object_id,
                    deadline=deadline,
                )
            )
    actions.sort(key=lambda a: a.time)
    return ScriptedWorkload(actions=tuple(actions), horizon=horizon + settle)


class TraceRecorder:
    """Records a live evader's ``enter``/``move`` stream as a trace.

    Attach before ``enter()``; the recorder taps the evader's observer
    hook, so recording is engine-neutral and costs one list append per
    relocation.
    """

    def __init__(self) -> None:
        self._steps: List[Tuple[float, RegionId]] = []
        self._evader = None

    def attach(self, evader) -> "TraceRecorder":
        self._evader = evader
        evader.observe(self._on_event)
        return self

    def _on_event(self, event: str, region: RegionId) -> None:
        # The enter emits the first "move" (evader.py); "left" is skipped.
        if event == "move":
            self._steps.append((self._evader.sim.now, region))

    def trace(self, object_id: Optional[int] = None) -> MobilityTrace:
        if not self._steps:
            raise ValueError("no enter/move events recorded yet")
        oid = self._evader.object_id if object_id is None else object_id
        return MobilityTrace(steps=tuple(self._steps), object_id=oid)


def trace_from_obs(events: Iterable, object_id: int = 0) -> MobilityTrace:
    """Rebuild a trace from recorded ``EvaderMoved`` obs events.

    Accepts any iterable of obs events (e.g. a collector's buffer);
    non-mobility events and other objects are filtered out.
    """
    steps = [
        (ev.time, ev.region)
        for ev in events
        if getattr(ev, "kind", None) == "evader-moved"
        and ev.object_id == object_id
        and ev.event == "move"
    ]
    if not steps:
        raise ValueError(f"no EvaderMoved events for object {object_id}")
    return MobilityTrace(steps=tuple(steps), object_id=object_id)
