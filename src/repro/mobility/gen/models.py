"""Runtime mobility models backing the generator combinators.

Each :class:`~repro.mobility.gen.spec.GeneratorSpec` resolves to one of
these :class:`~repro.mobility.models.MobilityModel` subclasses, which
the existing :class:`~repro.mobility.evader.Evader` consumes unchanged.

Generated models are **move-strict**: ``allows_stay`` is ``False`` and
``next_region`` never returns the current region (the one exception is
:class:`ReplayModel`, which idles once its finite recorded trace is
exhausted).  They may also carry a per-step ``dwell_factor`` — the
waypoint-graph model's per-edge speed profile — which the trace
generator multiplies into the base dwell before clamping to the §VI
floor.

Models that need a restricted view of the space (obstacle fields) hold
their own masked tiling and ignore the tiling argument the caller
passes; masked moves are a subset of real-tiling neighbor moves, so the
evader's neighbor validation still holds.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from ...geometry.regions import RegionId
from ...geometry.tiling import GraphTiling, Tiling
from ..models import MobilityContractError, MobilityModel

__all__ = [
    "GeneratedModel",
    "MobilityContractError",
    "masked_tiling",
    "UniformWalkModel",
    "WaypointGraphModel",
    "HotspotModel",
    "DitherModel",
    "ReplayModel",
    "MaskedModel",
    "ComposeModel",
    "SwitchModel",
    "TimeSliceModel",
]


class GeneratedModel(MobilityModel):
    """Base for generator-produced models: move-strict, speed-profiled."""

    #: Generated models never stay (see Evader.step's contract).
    allows_stay = False

    def dwell_factor(self, current: RegionId, target: RegionId) -> float:
        """Dwell multiplier for the step ``current → target`` (≥ 0)."""
        return 1.0


def masked_tiling(tiling: Tiling, obstacles: Sequence[RegionId]) -> GraphTiling:
    """The sub-tiling of ``tiling`` with ``obstacles`` removed.

    Raises :class:`ValueError` when the remainder is empty, has no moves
    (a single region), or is disconnected — an obstacle field must leave
    a walkable space.
    """
    blocked = set(obstacles)
    unknown = blocked - set(tiling.regions())
    if unknown:
        raise ValueError(f"obstacle regions not in the tiling: {sorted(unknown)}")
    allowed = [r for r in tiling.regions() if r not in blocked]
    if len(allowed) < 2:
        raise ValueError("obstacle field leaves fewer than two regions")
    adjacency = {
        r: [n for n in tiling.neighbors(r) if n not in blocked] for r in allowed
    }
    seen = {allowed[0]}
    frontier = deque([allowed[0]])
    while frontier:
        cur = frontier.popleft()
        for nxt in adjacency[cur]:
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    if len(seen) != len(allowed):
        raise ValueError("obstacle field disconnects the tiling")
    centers = {r: tiling.region(r).center for r in allowed}
    return GraphTiling(adjacency, centers)


def _greedy_step(
    tiling: Tiling, current: RegionId, target: RegionId
) -> RegionId:
    """The neighbor of ``current`` closest to ``target`` (min-id ties)."""
    return min(
        tiling.neighbors(current),
        key=lambda nb: (tiling.distance(nb, target), nb),
    )


class UniformWalkModel(GeneratedModel):
    """Uniform random neighbor walk (the seeded-generator counterpart of
    :class:`~repro.mobility.models.RandomNeighborWalk`)."""

    def next_region(self, current, tiling, rng):
        return rng.choice(tiling.neighbors(current))


class WaypointGraphModel(GeneratedModel):
    """Walks a waypoint graph with per-edge speed profiles.

    The model patrols ``nodes``: it steps greedily through the tiling
    toward the current target waypoint; on arrival it draws the next
    waypoint uniformly from the graph edges out of the reached node.
    ``speeds[edge]`` scales the dwell of every step on that leg.
    """

    def __init__(
        self,
        nodes: Tuple[RegionId, ...],
        edges: Dict[int, Tuple[int, ...]],
        speeds: Dict[Tuple[int, int], float],
    ) -> None:
        self.nodes = nodes
        self.edges = edges
        self.speeds = speeds
        self._at = 0  # index of the waypoint we left
        self._target = 0  # index of the waypoint we are heading to

    def start_region(self, tiling, rng):
        self._at = rng.randrange(len(self.nodes))
        self._target = self._at
        return self.nodes[self._at]

    def _advance_target(self, rng) -> None:
        options = self.edges[self._target]
        self._at = self._target
        self._target = options[rng.randrange(len(options))]

    def next_region(self, current, tiling, rng):
        while self.nodes[self._target] == current:
            self._advance_target(rng)
        return _greedy_step(tiling, current, self.nodes[self._target])

    def dwell_factor(self, current, target):
        return self.speeds.get((self._at, self._target), 1.0)


class HotspotModel(GeneratedModel):
    """Hotspot churn: steps toward a time-varying attraction point.

    Every ``period`` steps the attraction switches to a fresh uniformly
    drawn one of the ``pool_size`` candidate hotspots (drawn lazily from
    the step rng, so the schedule is part of the trace's seed
    discipline).  At the hotspot the model orbits it with uniform
    neighbor steps until the next churn.
    """

    def __init__(self, pool: Tuple[RegionId, ...], period: int) -> None:
        self.pool = pool
        self.period = period
        self._steps = 0
        self._hotspot: Optional[RegionId] = None

    def next_region(self, current, tiling, rng):
        if self._hotspot is None or self._steps % self.period == 0:
            self._hotspot = self.pool[rng.randrange(len(self.pool))]
        self._steps += 1
        if self._hotspot == current:
            return rng.choice(tiling.neighbors(current))
        return _greedy_step(tiling, current, self._hotspot)


class DitherModel(GeneratedModel):
    """Adversarial handover-maximizing walk (the §IV-B stressor).

    Each step moves to the neighbor separated from the current region at
    the most hierarchy levels — the walk finds and then hugs the deepest
    cluster boundary it can reach, so nearly every relocation forces
    grows/shrinks through the deepest shared level (the most expensive
    §VI floor).  Ties break on the smallest region id: the path is a
    pure function of the start region.
    """

    def __init__(self, hierarchy) -> None:
        self.hierarchy = hierarchy

    def _split_depth(self, u: RegionId, v: RegionId) -> int:
        h = self.hierarchy
        return sum(
            1 for level in range(h.max_level) if h.cluster(u, level) != h.cluster(v, level)
        )

    def next_region(self, current, tiling, rng):
        return min(
            tiling.neighbors(current),
            key=lambda nb: (-self._split_depth(current, nb), nb),
        )


class ReplayModel(GeneratedModel):
    """Replays a recorded region sequence, then idles.

    The one generated model allowed to stay: a finite recorded trace
    runs out, and idling at its final region is the only §VI-legal
    continuation under a periodic dwell clock.
    """

    allows_stay = True

    def __init__(self, path: Tuple[RegionId, ...]) -> None:
        if not path:
            raise ValueError("replay needs at least one region")
        self.path = path
        self._index = 0

    def start_region(self, tiling, rng):
        self._index = 0
        for a, b in zip(self.path, self.path[1:]):
            if not tiling.are_neighbors(a, b):
                raise ValueError(
                    f"replayed hop {a!r} -> {b!r} is not a neighbor move"
                )
        return self.path[0]

    def next_region(self, current, tiling, rng):
        target = self.path[self._index]
        if current == target:
            if self._index + 1 == len(self.path):
                return current  # trace exhausted: idle (allows_stay)
            self._index += 1
            target = self.path[self._index]
        if current == target or tiling.are_neighbors(current, target):
            return target
        # Off-path (a combinator sibling moved the evader): walk back
        # toward the next recorded region before resuming the replay.
        return _greedy_step(tiling, current, target)


class MaskedModel(GeneratedModel):
    """Runs ``inner`` on a fixed obstacle-masked sub-tiling.

    The tiling the caller passes is mostly ignored: the mask was
    resolved once (seeded) and every move the inner model makes respects
    it.  The one exception is composition — a sibling model in a
    ``Compose``/``Switch``/``TimeSlice`` may carry the evader outside
    the masked space, in which case this model steps greedily (on the
    caller's full tiling) back toward the nearest allowed region before
    handing control to ``inner`` again.
    """

    def __init__(
        self,
        inner: MobilityModel,
        tiling: GraphTiling,
        obstacles: Tuple[RegionId, ...],
    ) -> None:
        self.inner = inner
        self.tiling = tiling
        self.obstacles = obstacles
        self._allowed = set(tiling.regions())

    def start_region(self, tiling, rng):
        return self.inner.start_region(self.tiling, rng)

    def next_region(self, current, tiling, rng):
        if current not in self._allowed:
            return min(
                tiling.neighbors(current),
                key=lambda nb: (
                    min(tiling.distance(nb, a) for a in self._allowed),
                    nb,
                ),
            )
        return self.inner.next_region(current, self.tiling, rng)

    def dwell_factor(self, current, target):
        inner_factor = getattr(self.inner, "dwell_factor", None)
        if inner_factor is None:
            return 1.0
        return inner_factor(current, target)


class ComposeModel(GeneratedModel):
    """Weighted per-step mixture of child models."""

    def __init__(
        self, parts: Tuple[MobilityModel, ...], weights: Tuple[float, ...]
    ) -> None:
        self.parts = parts
        self.weights = weights
        self._total = sum(weights)
        self._active = parts[0]

    def start_region(self, tiling, rng):
        start = self.parts[0].start_region(tiling, rng)
        for part in self.parts[1:]:
            part.start_region(tiling, rng)
        return start

    def _pick(self, rng) -> MobilityModel:
        draw = rng.random() * self._total
        acc = 0.0
        for part, weight in zip(self.parts, self.weights):
            acc += weight
            if draw < acc:
                return part
        return self.parts[-1]

    def next_region(self, current, tiling, rng):
        self._active = self._pick(rng)
        return self._active.next_region(current, tiling, rng)

    def dwell_factor(self, current, target):
        factor = getattr(self._active, "dwell_factor", None)
        return 1.0 if factor is None else factor(current, target)


class SwitchModel(GeneratedModel):
    """Round-robin between child models every ``every`` steps."""

    def __init__(self, parts: Tuple[MobilityModel, ...], every: int) -> None:
        self.parts = parts
        self.every = every
        self._steps = 0

    def start_region(self, tiling, rng):
        start = self.parts[0].start_region(tiling, rng)
        for part in self.parts[1:]:
            part.start_region(tiling, rng)
        return start

    @property
    def _active(self) -> MobilityModel:
        return self.parts[(self._steps // self.every) % len(self.parts)]

    def next_region(self, current, tiling, rng):
        active = self._active
        self._steps += 1
        return active.next_region(current, tiling, rng)

    def dwell_factor(self, current, target):
        # _steps already advanced: charge the step to the model that chose it.
        previous = self.parts[((self._steps - 1) // self.every) % len(self.parts)]
        factor = getattr(previous, "dwell_factor", None)
        return 1.0 if factor is None else factor(current, target)


class TimeSliceModel(GeneratedModel):
    """Piecewise schedule: child ``i`` drives steps ``< boundaries[i]``,
    the last child drives everything after the final boundary."""

    def __init__(
        self, parts: Tuple[MobilityModel, ...], boundaries: Tuple[int, ...]
    ) -> None:
        self.parts = parts
        self.boundaries = boundaries
        self._steps = 0
        self._last: Optional[MobilityModel] = None

    def start_region(self, tiling, rng):
        start = self.parts[0].start_region(tiling, rng)
        for part in self.parts[1:]:
            part.start_region(tiling, rng)
        return start

    def next_region(self, current, tiling, rng):
        index = len(self.boundaries)
        for i, bound in enumerate(self.boundaries):
            if self._steps < bound:
                index = i
                break
        self._steps += 1
        self._last = self.parts[index]
        return self._last.next_region(current, tiling, rng)

    def dwell_factor(self, current, target):
        factor = getattr(self._last, "dwell_factor", None)
        return 1.0 if factor is None else factor(current, target)
