"""Non-uniform deployment generation (the placement side of the DSL).

A :class:`DeploymentSpec` is a small frozen description of *where the
physical nodes go*; ``counts(tiling, rng)`` resolves it to a per-region
node count using the caller's seeded rng, and
:func:`repro.physical.deployment.generated` turns the counts into live
:class:`~repro.physical.node.PhysicalNode` populations.  Like the
mobility combinators, specs are picklable and all placement randomness
flows through the passed stream, so deployments are reproducible and
fork-divergent under the registry discipline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ...geometry.regions import RegionId
from .models import masked_tiling


@dataclass(frozen=True)
class DeploymentSpec:
    """Base class for deployment generators."""

    def counts(self, tiling, rng) -> Dict[RegionId, int]:
        """Per-region node counts over ``tiling`` (regions may be 0)."""
        raise NotImplementedError


@dataclass(frozen=True)
class UniformNodes(DeploymentSpec):
    """``per_region`` nodes in every region (the classic deployment)."""

    per_region: int = 1

    def __post_init__(self) -> None:
        if self.per_region < 1:
            raise ValueError("per_region must be >= 1")

    def counts(self, tiling, rng):
        return {r: self.per_region for r in tiling.regions()}


@dataclass(frozen=True)
class ScatterNodes(DeploymentSpec):
    """``total`` nodes scattered uniformly at random over the regions."""

    total: int = 16

    def __post_init__(self) -> None:
        if self.total < 1:
            raise ValueError("total must be >= 1")

    def counts(self, tiling, rng):
        regions = list(tiling.regions())
        out = {r: 0 for r in regions}
        for _ in range(self.total):
            out[regions[rng.randrange(len(regions))]] += 1
        return out


@dataclass(frozen=True)
class HotspotNodes(DeploymentSpec):
    """``total`` nodes concentrated around attraction points.

    ``hotspots`` are explicit centers (sampled ``k`` at resolve time
    when empty); region weight decays geometrically with tiling distance
    to the nearest hotspot (``falloff`` per hop), and nodes are
    apportioned largest-remainder so the split is deterministic given
    the weights.
    """

    total: int = 16
    hotspots: Tuple[RegionId, ...] = ()
    k: int = 2
    falloff: float = 2.0

    def __post_init__(self) -> None:
        if self.total < 1:
            raise ValueError("total must be >= 1")
        if not self.hotspots and self.k < 1:
            raise ValueError("need at least one hotspot")
        if self.falloff <= 1.0:
            raise ValueError("falloff must be > 1")

    def counts(self, tiling, rng):
        regions = list(tiling.regions())
        if self.hotspots:
            centers = list(self.hotspots)
            missing = set(centers) - set(regions)
            if missing:
                raise ValueError(f"hotspots not in the tiling: {sorted(missing)}")
        else:
            centers = rng.sample(regions, min(self.k, len(regions)))
        weights = {
            r: self.falloff ** -min(tiling.distance(r, c) for c in centers)
            for r in regions
        }
        scale = self.total / sum(weights.values())
        out = {r: int(weights[r] * scale) for r in regions}
        remainders = sorted(
            regions, key=lambda r: (-(weights[r] * scale - out[r]), r)
        )
        short = self.total - sum(out.values())
        for r in remainders[:short]:
            out[r] += 1
        return out


@dataclass(frozen=True)
class MaskedNodes(DeploymentSpec):
    """Deploy ``inner`` on an obstacle-masked sub-tiling (obstacle
    regions get zero nodes; the walkable remainder absorbs them)."""

    inner: DeploymentSpec = field(default_factory=UniformNodes)
    regions: Tuple[RegionId, ...] = ()

    def __post_init__(self) -> None:
        if not self.regions:
            raise ValueError("masked deployment needs obstacle regions")

    def counts(self, tiling, rng):
        masked = masked_tiling(tiling, self.regions)
        inner = self.inner.counts(masked, rng)
        out = {r: 0 for r in tiling.regions()}
        out.update(inner)
        return out


def place(spec: DeploymentSpec, tiling, rng) -> List[RegionId]:
    """Expand a deployment spec into a region-sorted placement list.

    The list is sorted by region id (then repeated per count), so node
    ids assigned in placement order are a pure function of the counts —
    independent of dict iteration order.
    """
    counts = spec.counts(tiling, rng)
    placements: List[RegionId] = []
    for region in sorted(counts):
        placements.extend([region] * counts[region])
    if not placements:
        raise ValueError("deployment placed no nodes")
    return placements
