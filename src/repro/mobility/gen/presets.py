"""Registry-named mobility regimes (the DSL's vocabulary).

A preset is a frozen :class:`~repro.mobility.gen.spec.GeneratorSpec`
tree under a stable name; ``ScenarioConfig(mobility="dither")``, the
``repro mobility`` CLI and the sweep runner all resolve names here.
Presets avoid explicit region ids so every regime works on any grid
size — placement choices are sampled at resolve time from the seeded
stream.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .spec import (
    Compose,
    Convoy,
    Dither,
    GeneratorSpec,
    Hotspots,
    Obstacles,
    Switch,
    TimeSlice,
    Walk,
    WaypointGraph,
)

_PRESETS: Dict[str, GeneratorSpec] = {
    # -- single primitives ------------------------------------------------
    "uniform-walk": Walk(),
    "waypoint-patrol": WaypointGraph(k=4),
    "waypoint-slow-legs": WaypointGraph(
        k=3,
        edges=((0, 1), (1, 2), (2, 0)),
        speeds=(1.0, 2.0, 4.0),
    ),
    "obstacle-walk": Obstacles(inner=Walk(), density=0.15),
    "convoy-line": Convoy(leader=Walk(), followers=2, offset=1),
    "hotspot-churn": Hotspots(k=3, period=6),
    "dither": Dither(),
    # -- composed regimes -------------------------------------------------
    "convoy-patrol": Convoy(leader=WaypointGraph(k=3), followers=3, offset=2),
    "mixed-walk-dither": Compose(parts=(Walk(), Dither()), weights=(2.0, 1.0)),
    "commute": Switch(parts=(Hotspots(k=2, period=8), Walk()), every=5),
    "phased": TimeSlice(
        parts=(Walk(), Dither(), Hotspots(k=2, period=4)), boundaries=(4, 8)
    ),
    # The golden composed scenario: a convoy whose leader runs hotspot
    # churn inside an obstacle field (tests/mobility/test_gen_golden.py).
    "gauntlet": Convoy(
        leader=Obstacles(inner=Hotspots(k=2, period=5), density=0.12),
        followers=2,
        offset=1,
    ),
}


def preset(name: str) -> GeneratorSpec:
    """Look up a registered mobility regime by name."""
    try:
        return _PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown mobility preset {name!r}; known: {', '.join(preset_names())}"
        ) from None


def preset_names() -> Tuple[str, ...]:
    """All registered regime names, sorted."""
    return tuple(sorted(_PRESETS))


def register_preset(name: str, spec: GeneratorSpec) -> None:
    """Register a custom regime (experiments can add their own names)."""
    if not isinstance(spec, GeneratorSpec):
        raise TypeError(f"expected a GeneratorSpec, got {type(spec).__name__}")
    if name in _PRESETS:
        raise ValueError(f"preset {name!r} already registered")
    _PRESETS[name] = spec
