"""The §VI speed-restriction model for generated trajectories.

Every trace the generator framework emits must be slow enough that the
tracking structure settles between relocations (§VI): after a move the
evader dwells at least as long as the move's updates take to settle
through every level the move touched.  :class:`SpeedLimits` turns the
timer schedule and hierarchy geometry into concrete per-move lower
bounds:

* ``mode="atomic"`` — every dwell is at least
  :func:`~repro.mobility.speed.atomic_dwell`: the full grow-to-MAX plus
  trailing shrink completes before the next move (the Theorem 4.9
  regime).
* ``mode="concurrent"`` — the §VI regime: the dwell after a move
  ``u → v`` is at least
  :func:`~repro.mobility.speed.level_update_time` at the move's
  *touched level* — the lowest level whose cluster contains both ``u``
  and ``v``.  Shallow moves (inside one level-1 cluster) get the cheap
  ``concurrent_dwell`` floor; moves crossing deep cluster boundaries
  (the adversarial-dither paths) must dwell longer, because their
  grows/shrinks climb further before the low levels settle.

The property suite (``tests/mobility/test_gen_properties.py``) pins
exactly this contract on every generator combinator tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ...geometry.regions import RegionId
from ..speed import level_update_time

#: Supported restriction modes.
MODES = ("atomic", "concurrent")


def touched_level(hierarchy, u: RegionId, v: RegionId) -> int:
    """The lowest level whose cluster contains both ``u`` and ``v``.

    A move ``u → v`` changes the evader's cluster at every level below
    this one, so its grows and shrinks run exactly through these levels
    (the worst neighbor move touches ``max_level``; a move inside one
    level-1 cluster touches level 1).
    """
    if u == v:
        return 0
    for level in range(hierarchy.max_level + 1):
        if hierarchy.cluster(u, level) == hierarchy.cluster(v, level):
            return level
    return hierarchy.max_level


@dataclass(frozen=True)
class SpeedLimits:
    """Per-level §VI dwell lower bounds for one world.

    Attributes:
        per_level: ``per_level[l]`` is the settling time of a move whose
            updates climb through level ``l``
            (:func:`~repro.mobility.speed.level_update_time`).
        mode: ``"atomic"`` or ``"concurrent"`` (see module docstring).
    """

    per_level: Tuple[float, ...]
    mode: str = "concurrent"

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if not self.per_level:
            raise ValueError("per_level must be non-empty")

    @property
    def max_level(self) -> int:
        return len(self.per_level) - 1

    @property
    def enter_floor(self) -> float:
        """Minimum dwell after entering the space (the enter grows the
        full path to MAX, so it settles like a worst-case move)."""
        return self.per_level[-1]

    def required(self, hierarchy, u: RegionId, v: RegionId) -> float:
        """Minimum dwell after the move ``u → v`` before the next move."""
        if self.mode == "atomic":
            return self.per_level[-1]
        return self.per_level[min(touched_level(hierarchy, u, v), self.max_level)]

    @classmethod
    def for_hierarchy(
        cls,
        hierarchy,
        delta: float = 1.0,
        e: float = 0.5,
        schedule=None,
        mode: str = "concurrent",
    ) -> "SpeedLimits":
        """Limits for one hierarchy under its (grid-corollary) schedule.

        ``schedule`` defaults to the grid schedule when the hierarchy
        exposes a base ``r``; non-grid hierarchies must pass one.
        """
        if schedule is None:
            r = getattr(hierarchy, "r", None)
            if r is None:
                raise ValueError(
                    "hierarchy has no grid base r; pass an explicit schedule"
                )
            from ...core.timers import grid_schedule

            schedule = grid_schedule(hierarchy.params, delta, e, r)
        params = hierarchy.params
        per_level = tuple(
            level_update_time(schedule, params, delta, e, level)
            for level in range(params.max_level + 1)
        )
        return cls(per_level=per_level, mode=mode)


def check_trace(
    trace,
    hierarchy,
    limits: SpeedLimits,
    tolerance: float = 1e-9,
) -> Optional[str]:
    """Verify a :class:`~repro.mobility.gen.trace.MobilityTrace` against
    ``limits``; returns a human-readable violation or ``None`` when the
    trace is §VI-legal.
    """
    steps = trace.steps
    for i in range(len(steps) - 1):
        t_here, here = steps[i]
        t_next, there = steps[i + 1]
        dwell = t_next - t_here
        if i == 0:
            floor = limits.enter_floor
            what = "enter"
        else:
            prev = steps[i - 1][1]
            floor = limits.required(hierarchy, prev, here)
            what = f"move {prev!r} -> {here!r}"
        if dwell + tolerance < floor:
            return (
                f"step {i}: dwell {dwell:g} at {here!r} after {what} "
                f"violates the §VI floor {floor:g} ({limits.mode})"
            )
    return None
