"""The mobile object being tracked (§III: the *Evader*).

The evader resides in exactly one region and relocates to neighboring
regions under a :class:`~repro.mobility.models.MobilityModel`.  It is
modeled with the GPS service: observers (the augmented GPS) receive a
``left(old_region)`` followed by a ``move(new_region)`` at each
relocation, exactly when the evader leaves/enters regions.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from ..geometry.regions import RegionId
from ..geometry.tiling import Tiling
from ..sim.engine import Simulator
from ..obs._state import OBS
from ..obs.events import EvaderMoved
from .models import MobilityContractError, MobilityModel

# Observers receive (event, region) with event in {"move", "left"}.
EvaderObserver = Callable[[str, RegionId], None]


class Evader:
    """The tracked mobile object.

    Args:
        sim: Simulator driving the dwell clock.
        tiling: The deployment space.
        model: Mobility model resolving each relocation.
        dwell: Time spent in a region between relocations.
        rng: Random stream for the model.
        name: Trace name.
        object_id: Tracking-lane id in a multi-object deployment
            (DESIGN.md §9); ``0`` is the paper's single evader.

    The evader is created *outside* the space; call :meth:`enter` to
    place it (emitting the first ``move``), then :meth:`start` to begin
    periodic relocations, or drive single steps with :meth:`step`.
    """

    #: Class-level fallback for evaders pickled before multi-object.
    object_id = 0

    def __init__(
        self,
        sim: Simulator,
        tiling: Tiling,
        model: MobilityModel,
        dwell: float,
        rng: Optional[random.Random] = None,
        name: str = "evader",
        object_id: int = 0,
    ) -> None:
        if dwell <= 0:
            raise ValueError("dwell must be positive")
        self.sim = sim
        self.tiling = tiling
        self.model = model
        self.dwell = dwell
        self.rng = rng if rng is not None else random.Random(0)
        self.name = name
        self.object_id = object_id
        self.region: Optional[RegionId] = None
        self.moves_made = 0
        self.stays_made = 0
        self.distance_traveled = 0
        self._observers: List[EvaderObserver] = []
        self._running = False
        self._tick_event = None

    def observe(self, observer: EvaderObserver) -> None:
        """Register for move/left notifications (the augmented GPS)."""
        self._observers.append(observer)

    def unobserve(self, observer: EvaderObserver) -> None:
        """Remove an observer (no-op when absent)."""
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    @property
    def observer_count(self) -> int:
        """Number of live observers (leak detection in tests)."""
        return len(self._observers)

    def _emit(self, event: str, region: RegionId) -> None:
        self.sim.trace.record(self.sim.now, self.name, event, region)
        if OBS.events_enabled:
            OBS.emit(
                EvaderMoved(
                    time=self.sim.now,
                    event=event,
                    region=region,
                    object_id=self.object_id,
                )
            )
        for observer in self._observers:
            observer(event, region)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def enter(self, region: Optional[RegionId] = None) -> RegionId:
        """Place the evader into the space, emitting the first ``move``.

        The mobility model's ``start_region`` is always invoked so that
        stateful models (Lawnmower, FixedPath) initialise; an explicit
        ``region`` overrides where the evader is actually placed.
        """
        if self.region is not None:
            raise RuntimeError("evader already entered")
        model_start = self.model.start_region(self.tiling, self.rng)
        if region is None:
            region = model_start
        self.region = region
        self._emit("move", region)
        return region

    def step(self) -> RegionId:
        """Perform one relocation chosen by the mobility model.

        The stay contract: a model whose ``allows_stay`` is ``True``
        (all historical built-ins) may return the current region to
        idle — the evader burns the dwell period without emitting
        ``left``/``move`` and counts it in :attr:`stays_made`.  A
        move-strict model (``allows_stay=False``, every generated
        model) must always move; a stay raises
        :class:`~repro.mobility.models.MobilityContractError` instead
        of being silently absorbed.
        """
        if self.region is None:
            raise RuntimeError("evader has not entered the space")
        target = self.model.next_region(self.region, self.tiling, self.rng)
        if target == self.region:
            if not getattr(self.model, "allows_stay", True):
                raise MobilityContractError(
                    f"{type(self.model).__name__} is move-strict but "
                    f"returned the current region {target!r}"
                )
            self.stays_made += 1
            return self.region
        return self.move_to(target)

    def move_to(self, target: RegionId) -> RegionId:
        """Relocate to ``target`` (a neighbor, or the current region to idle)."""
        if self.region is None:
            raise RuntimeError("evader has not entered the space")
        if target == self.region:
            return self.region
        if not self.tiling.are_neighbors(self.region, target):
            raise ValueError(f"{target!r} is not a neighbor of {self.region!r}")
        old = self.region
        self._emit("left", old)
        self.region = target
        self.moves_made += 1
        self.distance_traveled += 1
        self._emit("move", target)
        return target

    def start(self) -> None:
        """Begin relocating every ``dwell`` time units."""
        if self.region is None:
            raise RuntimeError("call enter() before start()")
        if self._running:
            return
        self._running = True
        self._schedule_tick()

    def stop(self) -> None:
        self._running = False
        if self._tick_event is not None:
            self.sim.cancel(self._tick_event)
            self._tick_event = None

    def _schedule_tick(self) -> None:
        self._tick_event = self.sim.call_after(self.dwell, self._tick, tag=self.name)

    def _tick(self) -> None:
        if not self._running:
            return
        self.step()
        self._schedule_tick()
