"""Region-granularity mobility models.

The tracking problem is defined at region granularity (§III): the evader
occupies exactly one region and nondeterministically relocates to a
neighboring one.  A :class:`MobilityModel` resolves that nondeterminism:
given the current region it produces the next region (always a neighbor,
or the same region to idle).

Models provided:

* :class:`RandomNeighborWalk` — uniform neighbor each step.
* :class:`BoundaryOscillator` — ping-pongs between two adjacent regions;
  used with :func:`worst_boundary_pair` to provoke the dithering problem.
* :class:`Lawnmower` — boustrophedon sweep of a grid.
* :class:`WaypointWalk` — greedy neighbor steps toward a random waypoint,
  re-drawn on arrival.
* :class:`FixedPath` — replays an explicit region sequence.
* :class:`Stationary` — never moves.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..geometry.regions import RegionId
from ..geometry.tiling import GridTiling, Tiling
from ..hierarchy.hierarchy import ClusterHierarchy


class MobilityContractError(RuntimeError):
    """A move-strict mobility model (``allows_stay=False``) returned the
    current region from ``next_region`` — a contract violation
    :meth:`Evader.step` refuses to silently absorb."""


class MobilityModel:
    """Chooses successive regions for a mobile entity."""

    #: Whether ``next_region`` may return the current region to idle.
    #: Built-in models keep the historical permissive contract (an
    #: explicit stay burns one dwell period without emitting
    #: ``left``/``move``); generator models (:mod:`repro.mobility.gen`)
    #: set this ``False`` and every stay raises
    #: :class:`MobilityContractError` instead.
    allows_stay = True

    def start_region(self, tiling: Tiling, rng: random.Random) -> RegionId:
        """Initial region; defaults to a uniformly random one."""
        return rng.choice(tiling.regions())

    def next_region(
        self, current: RegionId, tiling: Tiling, rng: random.Random
    ) -> RegionId:
        """The next region: a neighbor of ``current``, or ``current`` to idle."""
        raise NotImplementedError


class Stationary(MobilityModel):
    """Stays in the start region forever."""

    def __init__(self, region: Optional[RegionId] = None) -> None:
        self.region = region

    def start_region(self, tiling: Tiling, rng: random.Random) -> RegionId:
        if self.region is not None:
            return self.region
        return super().start_region(tiling, rng)

    def next_region(self, current, tiling, rng):
        return current


class RandomNeighborWalk(MobilityModel):
    """Moves to a uniformly random neighboring region each step."""

    def __init__(self, start: Optional[RegionId] = None) -> None:
        self.start = start

    def start_region(self, tiling: Tiling, rng: random.Random) -> RegionId:
        if self.start is not None:
            return self.start
        return super().start_region(tiling, rng)

    def next_region(self, current, tiling, rng):
        return rng.choice(tiling.neighbors(current))


class BoundaryOscillator(MobilityModel):
    """Ping-pongs between two adjacent regions ``a`` and ``b``."""

    def __init__(self, a: RegionId, b: RegionId) -> None:
        self.a = a
        self.b = b

    def start_region(self, tiling: Tiling, rng: random.Random) -> RegionId:
        if not tiling.are_neighbors(self.a, self.b):
            raise ValueError(f"oscillator regions {self.a!r},{self.b!r} not adjacent")
        return self.a

    def next_region(self, current, tiling, rng):
        return self.b if current == self.a else self.a


class Lawnmower(MobilityModel):
    """Boustrophedon sweep of a :class:`GridTiling`.

    Sweeps right, then left, row by row; on reaching the last region it
    bounces and retraces the sweep backwards, so every step is a
    neighbor move and the sweep repeats forever.
    """

    def __init__(self) -> None:
        self._order: List[RegionId] = []
        self._index = 0
        self._direction = 1

    def start_region(self, tiling: Tiling, rng: random.Random) -> RegionId:
        if not isinstance(tiling, GridTiling):
            raise TypeError("Lawnmower requires a GridTiling")
        self._order = []
        for row in range(tiling.height):
            cols = range(tiling.width)
            if row % 2 == 1:
                cols = reversed(cols)
            self._order.extend((col, row) for col in cols)
        self._index = 0
        self._direction = 1
        return self._order[0]

    def next_region(self, current, tiling, rng):
        if len(self._order) <= 1:
            return current
        nxt = self._index + self._direction
        if nxt < 0 or nxt >= len(self._order):
            self._direction *= -1
            nxt = self._index + self._direction
        self._index = nxt
        return self._order[self._index]


class WaypointWalk(MobilityModel):
    """Greedy neighbor steps toward a waypoint, re-drawn on arrival."""

    def __init__(self, start: Optional[RegionId] = None) -> None:
        self.start = start
        self._waypoint: Optional[RegionId] = None

    def start_region(self, tiling: Tiling, rng: random.Random) -> RegionId:
        if self.start is not None:
            return self.start
        return super().start_region(tiling, rng)

    def next_region(self, current, tiling, rng):
        if self._waypoint is None or self._waypoint == current:
            self._waypoint = rng.choice(tiling.regions())
        if self._waypoint == current:
            return current
        best = min(
            tiling.neighbors(current),
            key=lambda nb: (tiling.distance(nb, self._waypoint), nb),
        )
        return best


class FixedPath(MobilityModel):
    """Replays an explicit sequence of regions, then idles at the end.

    Each consecutive pair must be neighbors (or equal, to idle a step).
    """

    def __init__(self, path: Sequence[RegionId]) -> None:
        if not path:
            raise ValueError("FixedPath needs at least one region")
        self.path = list(path)
        self._index = 0

    def start_region(self, tiling: Tiling, rng: random.Random) -> RegionId:
        self._index = 0
        for a, b in zip(self.path, self.path[1:]):
            if a != b and not tiling.are_neighbors(a, b):
                raise ValueError(f"path hop {a!r} -> {b!r} is not a neighbor move")
        return self.path[0]

    def next_region(self, current, tiling, rng):
        if self._index + 1 < len(self.path):
            self._index += 1
        return self.path[self._index]


def worst_boundary_pair(hierarchy: ClusterHierarchy) -> Tuple[RegionId, RegionId]:
    """Two adjacent regions separated at every hierarchy level below MAX.

    Such a pair exists on any grid hierarchy (e.g. the central vertical
    boundary).  Oscillating across it makes every move cross a
    multi-level cluster boundary — the "dithering" stressor of §IV-B.

    Raises:
        ValueError: if no such pair exists in the hierarchy.
    """
    best: Optional[Tuple[int, RegionId, RegionId]] = None
    tiling = hierarchy.tiling
    for u in tiling.regions():
        for v in tiling.neighbors(u):
            if v < u:
                continue
            split_below = 0
            for level in range(hierarchy.max_level):
                if hierarchy.cluster(u, level) != hierarchy.cluster(v, level):
                    split_below += 1
            if best is None or split_below > best[0]:
                best = (split_below, u, v)
    if best is None:
        raise ValueError("hierarchy world has a single region")
    split, u, v = best
    if split < hierarchy.max_level:
        # No pair separated at *every* level below MAX; return the best.
        pass
    return (u, v)
