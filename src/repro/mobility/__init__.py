"""Evader mobility: models, the mobile object, speed restrictions (§III, §VI)."""

from .evader import Evader, EvaderObserver
from .models import (
    BoundaryOscillator,
    FixedPath,
    Lawnmower,
    MobilityModel,
    RandomNeighborWalk,
    Stationary,
    WaypointWalk,
    worst_boundary_pair,
)
from .speed import atomic_dwell, concurrent_dwell, level_update_time

__all__ = [
    "BoundaryOscillator",
    "Evader",
    "EvaderObserver",
    "FixedPath",
    "Lawnmower",
    "MobilityModel",
    "RandomNeighborWalk",
    "Stationary",
    "WaypointWalk",
    "atomic_dwell",
    "concurrent_dwell",
    "level_update_time",
    "worst_boundary_pair",
]
